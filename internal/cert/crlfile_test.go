package cert

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/tag"
)

// writeCRLFile lays CRLs into a temp file in the given layout:
// "lines" (one per line, sf-certd's historical layout) or "concat"
// (back to back, sf-dbserver's).
func writeCRLFile(t *testing.T, layout string, lists ...*RevocationList) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "revoked.crl")
	var raw []byte
	for _, rl := range lists {
		raw = append(raw, rl.Sexp().Transport()...)
		if layout == "lines" {
			raw = append(raw, '\n')
		}
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadCRLFileBothLayouts is the loader-unification bugfix: the
// same multi-CRL file must load whether its expressions are separated
// by newlines or concatenated, so one CRL file serves every daemon.
func TestLoadCRLFileBothLayouts(t *testing.T) {
	signer, _ := keys("crlfile-signer")
	v := core.Until(time.Now().Add(time.Hour))
	a := NewRevocationList(signer, v, []byte("hash-a-32-bytes-hash-a-32-bytes-"))
	b := NewRevocationList(signer, v, []byte("hash-b-32-bytes-hash-b-32-bytes-"))
	for _, layout := range []string{"lines", "concat"} {
		path := writeCRLFile(t, layout, a, b)
		lists, err := LoadCRLFile(path)
		if err != nil {
			t.Fatalf("%s layout: %v", layout, err)
		}
		if len(lists) != 2 {
			t.Fatalf("%s layout: loaded %d lists, want 2", layout, len(lists))
		}
		if lists[0].Hash() != a.Hash() || lists[1].Hash() != b.Hash() {
			t.Fatalf("%s layout: lists loaded out of order or corrupted", layout)
		}
	}
}

func TestLoadCRLFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.crl")
	if err := os.WriteFile(path, []byte("(not-a-crl)"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCRLFile(path); err == nil {
		t.Fatal("garbage CRL file loaded without error")
	}
}

// TestAddNewDedup: re-installing a CRL already held must not grow the
// store or bump any attached cache epoch — the property hot reload
// rests on (a no-op reload costs no cache flush).
func TestAddNewDedup(t *testing.T) {
	signer, _ := keys("dedup-signer")
	rl := NewRevocationList(signer, core.Until(time.Now().Add(time.Hour)),
		[]byte("hash-c-32-bytes-hash-c-32-bytes-"))
	rs := NewRevocationStore()
	cache := core.NewProofCache(16)
	rs.AttachCache(cache)

	added, err := rs.AddNew(rl)
	if err != nil || !added {
		t.Fatalf("first AddNew: added=%v err=%v", added, err)
	}
	epoch := cache.Epoch()
	added, err = rs.AddNew(rl)
	if err != nil || added {
		t.Fatalf("second AddNew: added=%v err=%v, want duplicate no-op", added, err)
	}
	if cache.Epoch() != epoch {
		t.Fatal("duplicate CRL install bumped the cache epoch")
	}
	if got := len(rs.Lists()); got != 1 {
		t.Fatalf("Lists holds %d CRLs, want 1", got)
	}
	if !rs.Has(rl.Hash()) {
		t.Fatal("Has reports an installed CRL absent")
	}
}

// TestLoadFileReload: the hot-reload path — re-reading a file that
// grew by one CRL installs exactly the new list.
func TestLoadFileReload(t *testing.T) {
	signer, _ := keys("reload-signer")
	v := core.Until(time.Now().Add(time.Hour))
	a := NewRevocationList(signer, v, []byte("hash-d-32-bytes-hash-d-32-bytes-"))
	path := writeCRLFile(t, "lines", a)

	rs := NewRevocationStore()
	added, total, err := rs.LoadFile(path)
	if err != nil || len(added) != 1 || total != 1 {
		t.Fatalf("first load: added=%d total=%d err=%v", len(added), total, err)
	}

	// The operator appends a new CRL and reloads.
	b := NewRevocationList(signer, v, []byte("hash-e-32-bytes-hash-e-32-bytes-"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, b.Sexp().Transport()...)
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	added, total, err = rs.LoadFile(path)
	if err != nil || total != 2 {
		t.Fatalf("reload: total=%d err=%v", total, err)
	}
	if len(added) != 1 || added[0].Hash() != b.Hash() {
		t.Fatalf("reload installed %d new lists, want exactly the appended one", len(added))
	}
}

// TestRevokedByIssuerAt: a CRL only voids certificates its signer
// issued — the guard that keeps a network-supplied CRL from denying
// service to delegations its signer never granted.
func TestRevokedByIssuerAt(t *testing.T) {
	issuer, issuerP := keys("rbi-issuer")
	mallory, _ := keys("rbi-mallory")
	_, bobP := keys("rbi-bob")
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))

	c, err := Delegate(issuer, bobP, issuerP, tag.All(), v)
	if err != nil {
		t.Fatal(err)
	}

	rs := NewRevocationStore()
	// Mallory signs a CRL naming the issuer's certificate.
	if err := rs.Add(NewRevocationList(mallory, v, c.Hash())); err != nil {
		t.Fatal(err)
	}
	revoked := rs.RevokedByIssuerAt(now)
	if revoked(c.Hash(), issuerP.Key()) {
		t.Fatal("a stranger's CRL voided the issuer's delegation")
	}
	if !revoked(c.Hash(), principal.KeyOf(mallory.Public()).Key()) {
		t.Fatal("signer-matched predicate missed the signer's own listing")
	}
	// The issuer's own CRL does void it.
	if err := rs.Add(NewRevocationList(issuer, v, c.Hash())); err != nil {
		t.Fatal(err)
	}
	if !rs.RevokedByIssuerAt(now)(c.Hash(), issuerP.Key()) {
		t.Fatal("issuer's own CRL did not void its delegation")
	}
	// Hash-only predicate (verifier semantics) is unchanged: any
	// installed fresh CRL counts.
	if !rs.RevokedAt(now)(c.Hash()) {
		t.Fatal("RevokedAt missed an installed listing")
	}
}
