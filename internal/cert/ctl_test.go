package cert

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func TestCtlTagCoverage(t *testing.T) {
	admin := CtlTag(CtlAdmin)
	publish := CtlTag(CtlPublish)
	all := CtlAllTag()

	if !tag.Covers(admin, admin) || !tag.Covers(publish, publish) {
		t.Fatal("ctl tags must cover themselves")
	}
	if tag.Covers(admin, publish) || tag.Covers(publish, admin) {
		t.Fatal("admin and publish must be disjoint")
	}
	if !tag.Covers(all, admin) || !tag.Covers(all, publish) {
		t.Fatal("CtlAllTag must cover both operation classes")
	}
	// Control tags never leak into the data plane: a web request tag
	// is not covered, nor does a web grant cover control.
	web := tag.ListOf(tag.Literal("web"), tag.ListOf(tag.Literal("method"), tag.Literal("GET")))
	if tag.Covers(all, web) {
		t.Fatal("control tag covered a data-plane tag")
	}
	if tag.Covers(web, admin) {
		t.Fatal("data-plane tag covered a control tag")
	}
}

func TestDelegateCtlShapes(t *testing.T) {
	op, _ := sfkey.Generate()
	to, _ := sfkey.Generate()
	recipient := principal.KeyOf(to.Public())

	one, err := DelegateCtl(op, recipient, time.Hour, CtlAdmin)
	if err != nil {
		t.Fatal(err)
	}
	if !tag.Covers(one.Body.Tag, CtlTag(CtlAdmin)) || tag.Covers(one.Body.Tag, CtlTag(CtlPublish)) {
		t.Fatalf("single-op credential tag wrong: %s", one.Body.Tag)
	}
	both, err := DelegateCtl(op, recipient, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tag.Covers(both.Body.Tag, CtlTag(CtlAdmin)) || !tag.Covers(both.Body.Tag, CtlTag(CtlPublish)) {
		t.Fatalf("default credential must cover both: %s", both.Body.Tag)
	}
	if !both.Body.Validity.IsUnbounded() {
		t.Fatal("zero ttl must mean unbounded")
	}
	listed, err := DelegateCtl(op, recipient, time.Hour, CtlAdmin, CtlPublish)
	if err != nil {
		t.Fatal(err)
	}
	if !tag.Covers(listed.Body.Tag, CtlTag(CtlAdmin)) || !tag.Covers(listed.Body.Tag, CtlTag(CtlPublish)) {
		t.Fatalf("listed-ops credential must cover both: %s", listed.Body.Tag)
	}
	// The credential verifies like any certificate.
	ctx := core.NewVerifyContext()
	if err := one.Verify(ctx); err != nil {
		t.Fatalf("credential does not verify: %v", err)
	}
}

func TestLoadCertFile(t *testing.T) {
	op, _ := sfkey.Generate()
	to, _ := sfkey.Generate()
	c1, err := DelegateCtl(op, principal.KeyOf(to.Public()), time.Hour, CtlAdmin)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := DelegateCtl(op, principal.KeyOf(to.Public()), time.Hour, CtlPublish)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// One per line.
	lines := filepath.Join(dir, "lines.cert")
	if err := os.WriteFile(lines, append(append(c1.Sexp().Transport(), '\n'), c2.Sexp().Transport()...), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCertFile(lines)
	if err != nil || len(got) != 2 {
		t.Fatalf("lines layout: %d certs, %v", len(got), err)
	}
	if !got[0].Equal(c1) || !got[1].Equal(c2) {
		t.Fatal("loaded certs differ from written ones")
	}

	// Concatenated canonical encodings.
	cat := filepath.Join(dir, "cat.cert")
	if err := os.WriteFile(cat, append(c1.Sexp().Canonical(), c2.Sexp().Canonical()...), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCertFile(cat)
	if err != nil || len(got) != 2 {
		t.Fatalf("concatenated layout: %d certs, %v", len(got), err)
	}

	// Garbage fails loudly.
	bad := filepath.Join(dir, "bad.cert")
	os.WriteFile(bad, []byte("(not-a-cert)"), 0o644)
	if _, err := LoadCertFile(bad); err == nil {
		t.Fatal("garbage cert file loaded")
	}
	if _, err := LoadCertFile(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("absent file loaded")
	}
}
