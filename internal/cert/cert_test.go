package cert

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func keys(seed string) (*sfkey.PrivateKey, principal.Key) {
	priv := sfkey.FromSeed([]byte(seed))
	return priv, principal.KeyOf(priv.Public())
}

func TestSignAndVerify(t *testing.T) {
	alice, kAlice := keys("alice")
	_, kBob := keys("bob")
	c, err := Delegate(alice, kBob, kAlice, tag.MustParse(`(tag (fs read))`), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewVerifyContext()
	if err := c.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	concl := c.Conclusion()
	if !principal.Equal(concl.Subject, kBob) || !principal.Equal(concl.Issuer, kAlice) {
		t.Fatalf("conclusion = %s", concl)
	}
	if len(c.Children()) != 0 {
		t.Fatal("cert should be a leaf")
	}
}

func TestCannotSignForOthers(t *testing.T) {
	alice, _ := keys("alice")
	_, kBob := keys("bob")
	_, kCarol := keys("carol")
	// Alice tries to issue a delegation of Bob's authority.
	if _, err := Delegate(alice, kCarol, kBob, tag.All(), core.Forever); err == nil {
		t.Fatal("foreign issuer signed")
	}
}

func TestIssuerRootedAtHashAndName(t *testing.T) {
	alice, _ := keys("alice")
	_, kBob := keys("bob")
	hAlice := principal.HashOfKey(alice.Public())
	// Issuer as hash of the signing key.
	if _, err := Delegate(alice, kBob, hAlice, tag.All(), core.Forever); err != nil {
		t.Fatalf("hash issuer rejected: %v", err)
	}
	// Issuer as a name rooted at the signing key.
	n := principal.NameOf(principal.KeyOf(alice.Public()), "mail")
	if _, err := Delegate(alice, kBob, n, tag.All(), core.Forever); err != nil {
		t.Fatalf("name issuer rejected: %v", err)
	}
	// Issuer as a name rooted at the hash of the signing key.
	nh := principal.NameOf(hAlice, "mail")
	if _, err := Delegate(alice, kBob, nh, tag.All(), core.Forever); err != nil {
		t.Fatalf("hash-name issuer rejected: %v", err)
	}
	// Issuer rooted elsewhere.
	other := principal.NameOf(kBob, "mail")
	if _, err := Delegate(alice, kBob, other, tag.All(), core.Forever); err == nil {
		t.Fatal("foreign name issuer signed")
	}
}

func TestTamperedCertFails(t *testing.T) {
	alice, kAlice := keys("alice")
	_, kBob := keys("bob")
	c, err := Delegate(alice, kBob, kAlice, tag.All(), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewVerifyContext()
	// Corrupt the signature.
	c.Signature[0] ^= 1
	if err := c.Verify(ctx); err == nil {
		t.Fatal("corrupted signature verified")
	}
	c.Signature[0] ^= 1
	// Swap the body.
	c.Body.Tag = tag.All()
	c.Body.Subject = principal.KeyOf(sfkey.FromSeed([]byte("eve")).Public())
	if err := c.Verify(core.NewVerifyContext()); err == nil {
		t.Fatal("altered body verified")
	}
}

func TestCertWireRoundTrip(t *testing.T) {
	alice, kAlice := keys("alice")
	_, kBob := keys("bob")
	v := core.Between(
		time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2027, 1, 1, 0, 0, 0, 0, time.UTC))
	c, err := Delegate(alice, kBob, kAlice, tag.MustParse(`(tag (db select))`), v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.ProofFromSexp(c.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	bc, ok := back.(*Cert)
	if !ok {
		t.Fatalf("decoded to %T", back)
	}
	if !bc.Equal(c) {
		t.Fatal("wire round trip changed certificate")
	}
	if err := bc.Verify(core.NewVerifyContext()); err != nil {
		t.Fatal(err)
	}
	// Transport encoding round trip.
	back2, err := core.ParseProof(c.Sexp().Transport())
	if err != nil {
		t.Fatal(err)
	}
	if back2.Conclusion().Key() != c.Conclusion().Key() {
		t.Fatal("transport round trip changed conclusion")
	}
}

// TestFigure1 reconstructs the paper's Figure 1: the structured proof
// that document D is the object client C associates with name N.
//
//	hash-identity:       HKC => KC
//	name-monotonicity:   HKC·N => KC·N
//	signed-certificate:  KS => HKC·N     (client binds its name to KS)
//	transitivity:        KS => KC·N
//	signed-certificate:  HD => KS        (server signs the document)
//	transitivity:        HD => KC·N
func TestFigure1(t *testing.T) {
	client, kc := keys("client-C")
	server, ks := keys("server-S")
	doc := []byte("the document D")
	hd := principal.HashOfBytes(doc)
	hkc := principal.HashOfKey(client.Public())

	// hash identity HKC => KC, lifted through the name N.
	hi := core.NewHashIdent(client.Public())
	nm, err := core.NewNameMono(hi, "N")
	if err != nil {
		t.Fatal(err)
	}

	// The client's signed binding: KS speaks for HKC·N. (The issuer
	// HKC·N is rooted at the client key through its hash.)
	bind, err := Sign(client, core.SpeaksFor{
		Subject: ks,
		Issuer:  principal.NameOf(hkc, "N"),
		Tag:     tag.All(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// transitivity: KS => KC·N.
	ksToName, err := core.NewTransitivity(bind, nm)
	if err != nil {
		t.Fatal(err)
	}
	wantMid := principal.NameOf(kc, "N")
	if !principal.Equal(ksToName.Conclusion().Issuer, wantMid) {
		t.Fatalf("mid conclusion issuer = %s, want %s", ksToName.Conclusion().Issuer, wantMid)
	}

	// The server's short-lived signature over the document: HD => KS.
	short := core.Until(time.Now().Add(time.Hour))
	docCert, err := Sign(server, core.SpeaksFor{
		Subject: hd, Issuer: ks, Tag: tag.All(), Validity: short,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Top: HD => KC·N.
	top, err := core.NewTransitivity(docCert, ksToName)
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewVerifyContext()
	if err := top.Verify(ctx); err != nil {
		t.Fatalf("Figure 1 proof failed: %v", err)
	}
	concl := top.Conclusion()
	if !principal.Equal(concl.Subject, hd) || !principal.Equal(concl.Issuer, wantMid) {
		t.Fatalf("Figure 1 conclusion = %s", concl)
	}

	// The whole structure survives the wire.
	back, err := core.ProofFromSexp(top.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(core.NewVerifyContext()); err != nil {
		t.Fatal(err)
	}

	// Lemma extraction: when the short-lived HD => KS expires, the
	// still-useful subproof KS => KC·N is recoverable for reuse
	// (section 4.3).
	var found bool
	for _, l := range core.Lemmas(back) {
		if l.Conclusion().Key() == ksToName.Conclusion().Key() {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("reusable lemma KS => KC·N not extractable")
	}
}

func TestRevocationList(t *testing.T) {
	alice, kAlice := keys("alice")
	_, kBob := keys("bob")
	c, err := Delegate(alice, kBob, kAlice, tag.All(), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	store := NewRevocationStore()
	ctx := core.NewVerifyContext()
	ctx.Revoked = store.Checker(ctx)
	if err := c.Verify(ctx); err != nil {
		t.Fatalf("unrevoked cert failed: %v", err)
	}

	crl := NewRevocationList(alice, core.Forever, c.Hash())
	if err := store.Add(crl); err != nil {
		t.Fatal(err)
	}
	ctx2 := core.NewVerifyContext()
	ctx2.Revoked = store.Checker(ctx2)
	if err := c.Verify(ctx2); err == nil {
		t.Fatal("revoked cert verified")
	}
}

func TestExpiredCRLDoesNotRevoke(t *testing.T) {
	alice, kAlice := keys("alice")
	_, kBob := keys("bob")
	c, _ := Delegate(alice, kBob, kAlice, tag.All(), core.Forever)
	past := core.Until(time.Now().Add(-time.Hour))
	store := NewRevocationStore()
	if err := store.Add(NewRevocationList(alice, past, c.Hash())); err != nil {
		t.Fatal(err)
	}
	ctx := core.NewVerifyContext()
	ctx.Revoked = store.Checker(ctx)
	if err := c.Verify(ctx); err != nil {
		t.Fatalf("stale CRL still revokes: %v", err)
	}
}

func TestCRLWireRoundTripAndTamper(t *testing.T) {
	alice, _ := keys("alice")
	crl := NewRevocationList(alice, core.Forever, sfkey.HashBytes([]byte("cert1")))
	back, err := RevocationListFromSexp(crl.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	back.Hashes = append(back.Hashes, sfkey.HashBytes([]byte("cert2")))
	if err := back.Verify(); err == nil {
		t.Fatal("tampered CRL verified")
	}
	store := NewRevocationStore()
	if err := store.Add(back); err == nil {
		t.Fatal("store accepted tampered CRL")
	}
}

func TestRevalidation(t *testing.T) {
	alice, kAlice := keys("alice")
	_, kBob := keys("bob")
	c, err := SignWithRevalidation(alice, core.SpeaksFor{
		Subject: kBob, Issuer: kAlice, Tag: tag.All(),
	}, "revalidator.example")
	if err != nil {
		t.Fatal(err)
	}
	// No revalidator configured: must refuse.
	if err := c.Verify(core.NewVerifyContext()); err == nil {
		t.Fatal("revalidation demand ignored")
	}
	rv := NewRevalidator()
	ctx := core.NewVerifyContext()
	ctx.Revalidate = rv.Revalidate
	if err := c.Verify(ctx); err != nil {
		t.Fatalf("confirmed cert failed: %v", err)
	}
	rv.Suspend(c.Hash())
	ctx2 := core.NewVerifyContext()
	ctx2.Revalidate = rv.Revalidate
	if err := c.Verify(ctx2); err == nil {
		t.Fatal("suspended cert verified")
	}
	rv.Restore(c.Hash())
	ctx3 := core.NewVerifyContext()
	ctx3.Revalidate = rv.Revalidate
	if err := c.Verify(ctx3); err != nil {
		t.Fatalf("restored cert failed: %v", err)
	}
	// The revalidation demand is inside the signed body: stripping it
	// breaks the signature.
	c.RevalidateAt = ""
	if err := c.Verify(core.NewVerifyContext()); err == nil {
		t.Fatal("stripped revalidation demand verified")
	}
}

func TestCertInsideLargerProof(t *testing.T) {
	// Channel assumption + cert chain: the usual server-side check.
	alice, kAlice := keys("alice")
	bob, kBob := keys("bob")
	ch := principal.ChannelOf(principal.ChannelSecure, []byte("session-1"))

	grant := tag.MustParse(`(tag (web (method GET) (* prefix "/pub/")))`)
	aliceToBob, err := Delegate(alice, kBob, kAlice, grant, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	bobToCh, err := Delegate(bob, ch, kBob, tag.All(), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := core.NewTransitivity(bobToCh, aliceToBob)
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewVerifyContext()
	req := tag.MustParse(`(tag (web (method GET) "/pub/x"))`)
	if err := core.Authorize(ctx, chain, ch, kAlice, req); err != nil {
		t.Fatalf("authorization failed: %v", err)
	}
	bad := tag.MustParse(`(tag (web (method GET) "/private"))`)
	if err := core.Authorize(ctx, chain, ch, kAlice, bad); err == nil {
		t.Fatal("out-of-scope request authorized")
	}
}

// TestParseProofPooledNoEscape: the pooled parser recycles its arena
// the moment it returns, so nothing in the returned proof may alias
// arena scratch or the caller's input buffer. Clobber both, churn the
// pool, and the proof must still verify and re-encode identically.
func TestParseProofPooledNoEscape(t *testing.T) {
	alice, kAlice := keys("pp-alice")
	bob, kBob := keys("pp-bob")
	_, kCarol := keys("pp-carol")
	aliceToBob, err := Delegate(alice, kBob, kAlice, tag.MustParse(`(tag (db select))`), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	bobToCarol, err := Delegate(bob, kCarol, kBob, tag.MustParse(`(tag (db select))`), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := core.NewTransitivity(bobToCarol, aliceToBob)
	if err != nil {
		t.Fatal(err)
	}
	want := chain.Sexp().Canonical()

	buf := append([]byte(nil), chain.Sexp().Transport()...)
	p, err := core.ParseProofPooled(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xAA
	}
	for i := 0; i < 64; i++ {
		a := sexp.GetArena()
		if _, err := a.ParseOne([]byte(`(churn (deep (nested expressions to overwrite recycled scratch)))`)); err != nil {
			t.Fatal(err)
		}
		sexp.PutArena(a)
	}
	if err := p.Verify(core.NewVerifyContext()); err != nil {
		t.Fatalf("pooled-parsed proof no longer verifies: %v", err)
	}
	if !bytes.Equal(p.Sexp().Canonical(), want) {
		t.Fatal("pooled-parsed proof re-encodes differently")
	}
}
