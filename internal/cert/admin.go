package cert

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/sexp"
)

// Admin endpoints for daemons that hold a RevocationStore but no
// certificate-directory service (sf-dbserver): install a CRL or
// re-read the daemon's CRL file without a restart. The directory
// daemon has richer versions of these under /certdir/admin/ (they
// additionally evict and gossip); these only feed the store — which
// is all a pure verifier needs, because installing a CRL bumps the
// proof-cache epoch and the next presentation of any affected proof
// re-verifies against the new revocation state.
//
//	POST /admin/crl        (crl ...)    -> (crl-installed) | (crl-duplicate)
//	POST /admin/reload-crl (reload-crl) -> (reloaded (added n) (total m))
const (
	AdminPathCRL    = "/admin/crl"
	AdminPathReload = "/admin/reload-crl"
)

// adminMaxBody bounds admin request bodies; a CRL is a signer, a
// signature, and a list of 32-byte hashes, so 1 MiB covers tens of
// thousands of revocations.
const adminMaxBody = 1 << 20

// AdminHandler serves the revocation admin endpoints over rs. reload,
// when non-nil, backs the reload endpoint (wire it to
// rs.LoadFile(theDaemonsCRLFile)); with a nil reload the endpoint
// answers a clean 400.
func AdminHandler(rs *RevocationStore, reload func() (added, total int, err error)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(AdminPathCRL, func(w http.ResponseWriter, r *http.Request) {
		body, err := readAdminBody(w, r)
		if err != nil {
			return
		}
		e, err := sexp.ParseOne(body)
		if err != nil {
			http.Error(w, "cert: bad S-expression: "+err.Error(), http.StatusBadRequest)
			return
		}
		rl, err := RevocationListFromSexp(e)
		if err != nil {
			http.Error(w, "cert: "+err.Error(), http.StatusBadRequest)
			return
		}
		added, err := rs.AddNew(rl)
		if err != nil {
			http.Error(w, "cert: "+err.Error(), http.StatusBadRequest)
			return
		}
		if !added {
			replySexp(w, sexp.List(sexp.String("crl-duplicate")))
			return
		}
		replySexp(w, sexp.List(sexp.String("crl-installed")))
	})
	mux.HandleFunc(AdminPathReload, func(w http.ResponseWriter, r *http.Request) {
		if _, err := readAdminBody(w, r); err != nil {
			return
		}
		if reload == nil {
			http.Error(w, "cert: no CRL file configured to reload", http.StatusBadRequest)
			return
		}
		added, total, err := reload()
		if err != nil {
			http.Error(w, fmt.Sprintf("cert: reload: %v", err), http.StatusInternalServerError)
			return
		}
		replySexp(w, sexp.List(sexp.String("reloaded"),
			sexp.List(sexp.String("added"), sexp.String(strconv.Itoa(added))),
			sexp.List(sexp.String("total"), sexp.String(strconv.Itoa(total)))))
	})
	return mux
}

func readAdminBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Method != http.MethodPost {
		http.Error(w, "cert: POST required", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("method")
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, adminMaxBody))
	if err != nil {
		http.Error(w, "cert: bad body", http.StatusBadRequest)
		return nil, err
	}
	return body, nil
}

func replySexp(w http.ResponseWriter, e sexp.Sexp) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(e.Canonical())
}
