package cert

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sfkey"
)

// Batched certificate verification: the bulk ingestion paths (WAL
// replay, gossip verify-before-index, proof-chain verification) hand
// their certificates here instead of calling Verify one at a time.
// The signature stage — the expensive part — runs through one
// sfkey.BatchVerifier (aggregate pass over a worker pool, bisection
// on failure); everything contextual (issuer rooting, revocation,
// revalidation) still runs per certificate against the given context,
// and every verdict lands in the context's memo and the shared proof
// cache exactly as an individual Verify would leave it. A caller that
// re-verifies the same certificates afterwards (Store.Publish re-
// verifying before it indexes) therefore pays cache lookups, not
// signature checks.

// VerifyBatch verifies certs against ctx and returns one error slot
// per certificate (nil for the ones that verify). Certificates with a
// cached positive verdict skip the signature batch entirely.
func VerifyBatch(ctx *core.VerifyContext, certs []*Cert) []error {
	errs := make([]error, len(certs))
	var bv sfkey.BatchVerifier
	pos := make([]int, 0, len(certs)) // batch index -> certs index
	for i, c := range certs {
		if c == nil {
			errs[i] = fmt.Errorf("cert: nil certificate")
			continue
		}
		if ctx.PeekVerified(c) {
			continue // Verify below short-circuits on the cached verdict
		}
		bv.Add(c.Signer, c.signingBytes(), c.Signature)
		pos = append(pos, i)
	}
	sigOK := make(map[int]bool, len(pos))
	for _, i := range pos {
		sigOK[i] = true
	}
	for _, bi := range bv.Verify() {
		sigOK[pos[bi]] = false
	}
	for i, c := range certs {
		if errs[i] != nil {
			continue
		}
		if ok, batched := sigOK[i]; batched {
			errs[i] = ctx.VerifyCached(c, func() error { return c.check(ctx, &ok) })
		} else {
			errs[i] = c.Verify(ctx)
		}
	}
	return errs
}

// VerifyChain verifies a whole proof tree with its certificate leaves
// batched: the leaves are collected, their signatures checked as one
// batch (seeding ctx's memo), and the tree then verified normally —
// every rule node finds its leaf verdicts already memoized. The
// verdict is exactly p.Verify(ctx)'s.
func VerifyChain(ctx *core.VerifyContext, p core.Proof) error {
	if p == nil {
		return fmt.Errorf("cert: nil proof")
	}
	var leaves []*Cert
	collectCerts(p, &leaves)
	if len(leaves) > 1 {
		VerifyBatch(ctx, leaves) // per-leaf errors resurface from the memo below
	}
	return p.Verify(ctx)
}

func collectCerts(p core.Proof, out *[]*Cert) {
	if c, ok := p.(*Cert); ok {
		*out = append(*out, c)
		return
	}
	for _, ch := range p.Children() {
		collectCerts(ch, out)
	}
}
