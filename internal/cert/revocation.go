package cert

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
)

// RevocationList is a signed statement by an issuing key that the
// listed certificates (identified by their body hashes) are void. Its
// validity window bounds the list's freshness, mirroring SPKI CRL
// semantics expressed in the logic (section 4.1).
// A RevocationList is immutable once constructed (NewRevocationList
// or RevocationListFromSexp); its content hash is computed once there
// and gossip re-reads it every round.
type RevocationList struct {
	Signer    sfkey.PublicKey
	Hashes    [][]byte
	Validity  core.Validity
	Signature []byte

	hash    [32]byte // cached Hash(); set by the constructors
	hashSet bool
}

// NewRevocationList signs a CRL voiding the given certificate hashes.
func NewRevocationList(priv *sfkey.PrivateKey, v core.Validity, hashes ...[]byte) *RevocationList {
	rl := &RevocationList{Signer: priv.Public(), Validity: v}
	for _, h := range hashes {
		rl.Hashes = append(rl.Hashes, append([]byte(nil), h...))
	}
	rl.Signature = priv.Sign(rl.signingBytes())
	rl.hash, rl.hashSet = rl.Sexp().Hash(), true
	return rl
}

func (rl *RevocationList) signingBytes() []byte {
	kids := []sexp.Sexp{sexp.String("crl-body")}
	if v := rl.Validity.Sexp(); v != nil {
		kids = append(kids, v)
	}
	for _, h := range rl.Hashes {
		kids = append(kids, sexp.Atom(h))
	}
	return sexp.List(kids...).Canonical()
}

// Verify checks the CRL signature.
func (rl *RevocationList) Verify() error {
	if !rl.Signer.Verify(rl.signingBytes(), rl.Signature) {
		return fmt.Errorf("cert: bad CRL signature")
	}
	return nil
}

// Sexp encodes the CRL for transfer.
func (rl *RevocationList) Sexp() sexp.Sexp {
	kids := []sexp.Sexp{
		sexp.String("crl"),
		sexp.List(sexp.String("signer"), rl.Signer.Sexp()),
		sexp.List(sexp.String("signature"), sexp.Atom(rl.Signature)),
	}
	if v := rl.Validity.Sexp(); v != nil {
		kids = append(kids, v)
	}
	for _, h := range rl.Hashes {
		kids = append(kids, sexp.List(sexp.String("revoked"), sexp.Atom(h)))
	}
	return sexp.List(kids...)
}

// Hash returns the CRL's content identity — the hash of its canonical
// encoding (body and signature alike) — used to deduplicate installs
// and to diff CRL sets during gossip. Constructed lists carry it
// precomputed; the fallback (a hand-assembled literal) computes fresh
// each call rather than racing to memoize.
func (rl *RevocationList) Hash() [32]byte {
	if rl.hashSet {
		return rl.hash
	}
	return rl.Sexp().Hash()
}

// RevocationListFromSexp decodes a CRL.
func RevocationListFromSexp(e sexp.Sexp) (*RevocationList, error) {
	if e == nil || e.Tag() != "crl" {
		return nil, fmt.Errorf("cert: not a crl expression")
	}
	signerE := e.Child("signer")
	sigE := e.Child("signature")
	if signerE == nil || signerE.Len() != 2 || sigE == nil || sigE.Len() != 2 {
		return nil, fmt.Errorf("cert: crl missing signer or signature")
	}
	pub, err := sfkey.PublicFromSexp(signerE.Nth(1))
	if err != nil {
		return nil, err
	}
	v, err := core.ValidityFromSexp(e.Child("valid"))
	if err != nil {
		return nil, err
	}
	rl := &RevocationList{
		Signer:    pub,
		Validity:  v,
		Signature: append([]byte(nil), sigE.Nth(1).Bytes()...),
	}
	for i := 1; i < e.Len(); i++ {
		c := e.Nth(i)
		if c.Tag() == "revoked" && c.Len() == 2 && c.Nth(1).IsAtom() {
			rl.Hashes = append(rl.Hashes, append([]byte(nil), c.Nth(1).Bytes()...))
		}
	}
	rl.hash, rl.hashSet = rl.Sexp().Hash(), true
	return rl, nil
}

// RevocationStore aggregates verified CRLs and answers the
// VerifyContext.Revoked query. It is safe for concurrent use.
//
// Installing a CRL bumps the revocation epoch of the process-wide
// shared proof cache (and any caches attached with AttachCache), so
// cached verification verdicts die with the certificates they rest
// on: the next presentation of an affected proof re-verifies against
// the new revocation state.
type RevocationStore struct {
	mu     sync.RWMutex
	lists  []*RevocationList
	seen   map[[32]byte]bool // installed CRL hashes, for dedup (never swept; see Sweep)
	byHash map[string][]revEntry
	caches []*core.ProofCache
	view   uint64
}

// revEntry is one CRL's claim on one certificate hash in the byHash
// index, with the signer's principal key precomputed so the
// issuer-matched predicates never serialize a key per lookup.
type revEntry struct {
	rl        *RevocationList
	signerKey string
}

// nextView hands each store a process-unique revocation view id;
// cached proof verdicts are shared only between verifiers holding the
// same view, so a verdict checked against this store's CRLs never
// lets a verifier with different revocation state skip its own check.
var nextView atomic.Uint64

// NewRevocationStore returns an empty store wired to the shared proof
// cache, with a fresh revocation view id.
func NewRevocationStore() *RevocationStore {
	return &RevocationStore{
		seen:   make(map[[32]byte]bool),
		byHash: make(map[string][]revEntry),
		caches: []*core.ProofCache{core.SharedProofCache()},
		view:   nextView.Add(1),
	}
}

// View returns the store's revocation view id for
// core.VerifyContext.RevocationView.
func (s *RevocationStore) View() uint64 { return s.view }

// Bind wires a verification context to this store: the Revoked hook
// and the matching revocation view, so the context may share cached
// verdicts with every other verifier bound to the same store.
func (s *RevocationStore) Bind(ctx *core.VerifyContext) {
	ctx.Revoked = s.Checker(ctx)
	ctx.RevocationView = s.view
}

// AttachCache registers an additional proof cache whose epoch this
// store bumps on revocation; verifiers running a private cache attach
// it here so their cached verdicts obey this store's CRLs.
func (s *RevocationStore) AttachCache(c *core.ProofCache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.caches = append(s.caches, c)
}

// Add verifies and installs a CRL, invalidating attached proof
// caches. A CRL that is not yet fresh (future NotBefore) schedules a
// second bump for the moment it becomes fresh: verdicts cached in the
// not-yet-fresh window would otherwise outlive the CRL's activation.
// The schedule runs on the wall clock; harnesses that verify under a
// simulated clock must call BumpEpoch themselves when their clock
// crosses a CRL's NotBefore.
func (s *RevocationStore) Add(rl *RevocationList) error {
	_, err := s.AddNew(rl)
	return err
}

// AddNew is Add with idempotence made visible: installing a CRL
// already held (same content hash) is a no-op that reports
// added == false — and, crucially, bumps no epoch, so re-reading an
// unchanged CRL file or re-receiving a gossiped CRL never flushes
// the proof cache. Hot reload and CRL gossip both install through
// AddNew.
func (s *RevocationStore) AddNew(rl *RevocationList) (added bool, err error) {
	a, errs := s.AddNewBatch([]*RevocationList{rl})
	return a[0], errs[0]
}

// AddNewBatch installs many CRLs at once, with the two costs that
// scale badly per-list amortized across the batch: the signature
// checks run through one sfkey.BatchVerifier (aggregate pass, with
// bisection pinpointing any bad list instead of condemning the
// batch), and however many lists are newly installed, attached proof
// caches are flushed by ONE epoch bump — k CRLs arriving in a gossip
// round no longer cost k full cache flushes. Outcomes are reported
// per list, aligned with rls: added[i] true for newly installed
// lists, errs[i] non-nil for rejected ones (bad signature), both
// false/nil for deduplicated re-installs.
func (s *RevocationStore) AddNewBatch(rls []*RevocationList) (added []bool, errs []error) {
	added = make([]bool, len(rls))
	errs = make([]error, len(rls))
	var bv sfkey.BatchVerifier
	pos := make([]int, 0, len(rls)) // batch index -> rls index
	for i, rl := range rls {
		if rl == nil {
			errs[i] = fmt.Errorf("cert: nil CRL")
			continue
		}
		bv.Add(rl.Signer, rl.signingBytes(), rl.Signature)
		pos = append(pos, i)
	}
	for _, bi := range bv.Verify() {
		errs[pos[bi]] = fmt.Errorf("cert: bad CRL signature")
	}
	var installed []*RevocationList
	s.mu.Lock()
	if s.seen == nil {
		s.seen = make(map[[32]byte]bool)
	}
	for i, rl := range rls {
		if rl == nil || errs[i] != nil {
			continue
		}
		h := rl.Hash()
		if s.seen[h] {
			continue
		}
		s.seen[h] = true
		s.lists = append(s.lists, rl)
		s.indexLocked(rl)
		added[i] = true
		installed = append(installed, rl)
	}
	caches := append([]*core.ProofCache(nil), s.caches...)
	s.mu.Unlock()
	if len(installed) == 0 {
		return added, errs
	}
	for _, c := range caches {
		c.BumpEpoch()
	}
	for _, rl := range installed {
		s.scheduleActivationBump(rl)
	}
	return added, errs
}

// scheduleActivationBump arranges the second cache flush for a CRL
// installed before its NotBefore: verdicts cached in the not-yet-fresh
// window must not outlive the list's activation. The schedule runs on
// the wall clock; harnesses verifying under a simulated clock call
// BumpEpoch themselves when their clock crosses a CRL's NotBefore.
func (s *RevocationStore) scheduleActivationBump(rl *RevocationList) {
	nb := rl.Validity.NotBefore
	if nb.IsZero() || !nb.After(time.Now()) {
		return
	}
	time.AfterFunc(time.Until(nb)+10*time.Millisecond, func() {
		s.mu.RLock()
		caches := append([]*core.ProofCache(nil), s.caches...)
		s.mu.RUnlock()
		for _, c := range caches {
			c.BumpEpoch()
		}
	})
}

// Lists returns a snapshot of the installed CRLs; the certificate
// directory serves them to gossip peers from here.
func (s *RevocationStore) Lists() []*RevocationList {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*RevocationList(nil), s.lists...)
}

// Has reports whether a CRL with the given content hash is installed;
// gossip uses it to diff CRL sets without shipping the lists.
func (s *RevocationStore) Has(h [32]byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seen[h]
}

// Checker returns the Revoked callback for a VerifyContext. A
// certificate counts as revoked when any CRL fresh at the context's
// verification time lists its hash.
func (s *RevocationStore) Checker(ctx *core.VerifyContext) func([]byte) bool {
	return func(h []byte) bool { return s.revokedAt(h, ctx.At()) }
}

// RevokedAt returns a predicate over certificate hashes as of the
// given instant, independent of any VerifyContext; certificate
// directories use it to evict delegations a fresh CRL has voided.
func (s *RevocationStore) RevokedAt(at time.Time) func([]byte) bool {
	return func(h []byte) bool { return s.revokedAt(h, at) }
}

// RevokedByIssuerAt is RevokedAt restricted to CRLs whose signer IS
// the certificate's issuer (matched by principal key): only the key
// that granted a delegation may void it. Directories use this
// predicate for CRLs that arrive over the network (admin endpoint,
// gossip), where a valid signature alone proves only that SOMEONE
// signed the list — without the issuer match, any key holder could
// sign a CRL naming arbitrary certificate hashes and deny service to
// delegations it never issued.
func (s *RevocationStore) RevokedByIssuerAt(at time.Time) func(certHash []byte, issuerKey string) bool {
	// Snapshot the fresh slice of the hash index once: the returned
	// predicate runs once per stored certificate
	// (Store.EvictRevokedByIssuer scans the whole directory), so each
	// call must be a map lookup — no store lock, no signer-key
	// serialization, no scan over every revoked hash.
	s.mu.RLock()
	fresh := make(map[string][]string, len(s.byHash))
	for h, entries := range s.byHash {
		for _, e := range entries {
			if e.rl.Validity.Contains(at) {
				fresh[h] = append(fresh[h], e.signerKey)
			}
		}
	}
	s.mu.RUnlock()
	return func(h []byte, issuerKey string) bool {
		for _, sk := range fresh[string(h)] {
			if sk == issuerKey {
				return true
			}
		}
		return false
	}
}

// indexLocked adds one installed CRL's hashes to the byHash index;
// the caller holds the write lock.
func (s *RevocationStore) indexLocked(rl *RevocationList) {
	if s.byHash == nil {
		s.byHash = make(map[string][]revEntry)
	}
	e := revEntry{rl: rl, signerKey: principal.KeyOf(rl.Signer).Key()}
	for _, h := range rl.Hashes {
		s.byHash[string(h)] = append(s.byHash[string(h)], e)
	}
}

// revokedAt answers through the hash index: one map lookup plus a
// freshness check per CRL naming this certificate, instead of a scan
// over every hash of every installed list.
func (s *RevocationStore) revokedAt(h []byte, at time.Time) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.byHash[string(h)] {
		if e.rl.Validity.Contains(at) {
			return true
		}
	}
	return false
}

// Sweep drops every CRL whose validity window has lapsed (NotAfter
// before now): the certificates such a list voided have expired too
// wherever the CRL mattered — a CRL bounded to outlive its targets is
// the issuer's job, and a lapsed list no longer affects any verdict
// (revokedAt checks freshness) — so keeping it only bloats the store
// and the hash index. The dedup set is intentionally NOT swept: a
// peer still holding a lapsed CRL would otherwise re-gossip it every
// round, and each reinstall would bump the proof-cache epoch — a
// flush loop bought by nothing. It returns the number of lists
// dropped. No epoch bump is needed: only positive verdicts are
// cached, so no cached state rests on a list's presence.
func (s *RevocationStore) Sweep(now time.Time) (dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.lists[:0]
	for _, rl := range s.lists {
		if na := rl.Validity.NotAfter; !na.IsZero() && na.Before(now) {
			dropped++
			continue
		}
		kept = append(kept, rl)
	}
	if dropped == 0 {
		return 0
	}
	s.lists = kept
	s.byHash = make(map[string][]revEntry, len(s.byHash))
	for _, rl := range s.lists {
		s.indexLocked(rl)
	}
	return dropped
}

// Revalidator is a trivial in-process one-time revalidation service:
// certificates registered as suspended fail revalidation. Real
// deployments would consult the issuer over a channel; the interface
// to the verifier is identical.
type Revalidator struct {
	mu        sync.RWMutex
	suspended map[string]bool
}

// NewRevalidator returns a service that confirms everything.
func NewRevalidator() *Revalidator {
	return &Revalidator{suspended: make(map[string]bool)}
}

// Suspend marks a certificate hash as no longer confirmable.
func (r *Revalidator) Suspend(certHash []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.suspended[string(certHash)] = true
}

// Restore lifts a suspension.
func (r *Revalidator) Restore(certHash []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.suspended, string(certHash))
}

// Revalidate implements the VerifyContext.Revalidate signature.
func (r *Revalidator) Revalidate(certHash []byte, where string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.suspended[string(certHash)] {
		return fmt.Errorf("cert: issuer at %q no longer confirms certificate", where)
	}
	return nil
}
