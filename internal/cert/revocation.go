package cert

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sexp"
	"repro/internal/sfkey"
)

// RevocationList is a signed statement by an issuing key that the
// listed certificates (identified by their body hashes) are void. Its
// validity window bounds the list's freshness, mirroring SPKI CRL
// semantics expressed in the logic (section 4.1).
type RevocationList struct {
	Signer    sfkey.PublicKey
	Hashes    [][]byte
	Validity  core.Validity
	Signature []byte
}

// NewRevocationList signs a CRL voiding the given certificate hashes.
func NewRevocationList(priv *sfkey.PrivateKey, v core.Validity, hashes ...[]byte) *RevocationList {
	rl := &RevocationList{Signer: priv.Public(), Validity: v}
	for _, h := range hashes {
		rl.Hashes = append(rl.Hashes, append([]byte(nil), h...))
	}
	rl.Signature = priv.Sign(rl.signingBytes())
	return rl
}

func (rl *RevocationList) signingBytes() []byte {
	kids := []*sexp.Sexp{sexp.String("crl-body")}
	if v := rl.Validity.Sexp(); v != nil {
		kids = append(kids, v)
	}
	for _, h := range rl.Hashes {
		kids = append(kids, sexp.Atom(h))
	}
	return sexp.List(kids...).Canonical()
}

// Verify checks the CRL signature.
func (rl *RevocationList) Verify() error {
	if !rl.Signer.Verify(rl.signingBytes(), rl.Signature) {
		return fmt.Errorf("cert: bad CRL signature")
	}
	return nil
}

// Sexp encodes the CRL for transfer.
func (rl *RevocationList) Sexp() *sexp.Sexp {
	kids := []*sexp.Sexp{
		sexp.String("crl"),
		sexp.List(sexp.String("signer"), rl.Signer.Sexp()),
		sexp.List(sexp.String("signature"), sexp.Atom(rl.Signature)),
	}
	if v := rl.Validity.Sexp(); v != nil {
		kids = append(kids, v)
	}
	for _, h := range rl.Hashes {
		kids = append(kids, sexp.List(sexp.String("revoked"), sexp.Atom(h)))
	}
	return sexp.List(kids...)
}

// RevocationListFromSexp decodes a CRL.
func RevocationListFromSexp(e *sexp.Sexp) (*RevocationList, error) {
	if e == nil || e.Tag() != "crl" {
		return nil, fmt.Errorf("cert: not a crl expression")
	}
	signerE := e.Child("signer")
	sigE := e.Child("signature")
	if signerE == nil || signerE.Len() != 2 || sigE == nil || sigE.Len() != 2 {
		return nil, fmt.Errorf("cert: crl missing signer or signature")
	}
	pub, err := sfkey.PublicFromSexp(signerE.Nth(1))
	if err != nil {
		return nil, err
	}
	v, err := core.ValidityFromSexp(e.Child("valid"))
	if err != nil {
		return nil, err
	}
	rl := &RevocationList{
		Signer:    pub,
		Validity:  v,
		Signature: append([]byte(nil), sigE.Nth(1).Octets...),
	}
	for i := 1; i < e.Len(); i++ {
		c := e.Nth(i)
		if c.Tag() == "revoked" && c.Len() == 2 && c.Nth(1).IsAtom() {
			rl.Hashes = append(rl.Hashes, append([]byte(nil), c.Nth(1).Octets...))
		}
	}
	return rl, nil
}

// RevocationStore aggregates verified CRLs and answers the
// VerifyContext.Revoked query. It is safe for concurrent use.
//
// Installing a CRL bumps the revocation epoch of the process-wide
// shared proof cache (and any caches attached with AttachCache), so
// cached verification verdicts die with the certificates they rest
// on: the next presentation of an affected proof re-verifies against
// the new revocation state.
type RevocationStore struct {
	mu     sync.RWMutex
	lists  []*RevocationList
	caches []*core.ProofCache
	view   uint64
}

// nextView hands each store a process-unique revocation view id;
// cached proof verdicts are shared only between verifiers holding the
// same view, so a verdict checked against this store's CRLs never
// lets a verifier with different revocation state skip its own check.
var nextView atomic.Uint64

// NewRevocationStore returns an empty store wired to the shared proof
// cache, with a fresh revocation view id.
func NewRevocationStore() *RevocationStore {
	return &RevocationStore{
		caches: []*core.ProofCache{core.SharedProofCache()},
		view:   nextView.Add(1),
	}
}

// View returns the store's revocation view id for
// core.VerifyContext.RevocationView.
func (s *RevocationStore) View() uint64 { return s.view }

// Bind wires a verification context to this store: the Revoked hook
// and the matching revocation view, so the context may share cached
// verdicts with every other verifier bound to the same store.
func (s *RevocationStore) Bind(ctx *core.VerifyContext) {
	ctx.Revoked = s.Checker(ctx)
	ctx.RevocationView = s.view
}

// AttachCache registers an additional proof cache whose epoch this
// store bumps on revocation; verifiers running a private cache attach
// it here so their cached verdicts obey this store's CRLs.
func (s *RevocationStore) AttachCache(c *core.ProofCache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.caches = append(s.caches, c)
}

// Add verifies and installs a CRL, invalidating attached proof
// caches. A CRL that is not yet fresh (future NotBefore) schedules a
// second bump for the moment it becomes fresh: verdicts cached in the
// not-yet-fresh window would otherwise outlive the CRL's activation.
// The schedule runs on the wall clock; harnesses that verify under a
// simulated clock must call BumpEpoch themselves when their clock
// crosses a CRL's NotBefore.
func (s *RevocationStore) Add(rl *RevocationList) error {
	if err := rl.Verify(); err != nil {
		return err
	}
	s.mu.Lock()
	caches := append([]*core.ProofCache(nil), s.caches...)
	s.lists = append(s.lists, rl)
	s.mu.Unlock()
	for _, c := range caches {
		c.BumpEpoch()
	}
	if nb := rl.Validity.NotBefore; !nb.IsZero() && nb.After(time.Now()) {
		time.AfterFunc(time.Until(nb)+10*time.Millisecond, func() {
			s.mu.RLock()
			caches := append([]*core.ProofCache(nil), s.caches...)
			s.mu.RUnlock()
			for _, c := range caches {
				c.BumpEpoch()
			}
		})
	}
	return nil
}

// Checker returns the Revoked callback for a VerifyContext. A
// certificate counts as revoked when any CRL fresh at the context's
// verification time lists its hash.
func (s *RevocationStore) Checker(ctx *core.VerifyContext) func([]byte) bool {
	return func(h []byte) bool { return s.revokedAt(h, ctx.At()) }
}

// RevokedAt returns a predicate over certificate hashes as of the
// given instant, independent of any VerifyContext; certificate
// directories use it to evict delegations a fresh CRL has voided.
func (s *RevocationStore) RevokedAt(at time.Time) func([]byte) bool {
	return func(h []byte) bool { return s.revokedAt(h, at) }
}

func (s *RevocationStore) revokedAt(h []byte, at time.Time) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rl := range s.lists {
		if !rl.Validity.Contains(at) {
			continue
		}
		for _, rh := range rl.Hashes {
			if bytes.Equal(rh, h) {
				return true
			}
		}
	}
	return false
}

// Revalidator is a trivial in-process one-time revalidation service:
// certificates registered as suspended fail revalidation. Real
// deployments would consult the issuer over a channel; the interface
// to the verifier is identical.
type Revalidator struct {
	mu        sync.RWMutex
	suspended map[string]bool
}

// NewRevalidator returns a service that confirms everything.
func NewRevalidator() *Revalidator {
	return &Revalidator{suspended: make(map[string]bool)}
}

// Suspend marks a certificate hash as no longer confirmable.
func (r *Revalidator) Suspend(certHash []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.suspended[string(certHash)] = true
}

// Restore lifts a suspension.
func (r *Revalidator) Restore(certHash []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.suspended, string(certHash))
}

// Revalidate implements the VerifyContext.Revalidate signature.
func (r *Revalidator) Revalidate(certHash []byte, where string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.suspended[string(certHash)] {
		return fmt.Errorf("cert: issuer at %q no longer confirms certificate", where)
	}
	return nil
}
