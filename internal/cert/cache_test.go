package cert

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

var cacheNow = time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)

// chainProof builds a 3-certificate transitivity chain
// leaf => mid => root and returns the composed proof plus the leafmost
// certificate for revocation targeting.
func chainProof(t *testing.T) (core.Proof, *Cert, *RevocationStore) {
	t.Helper()
	root, kRoot := keys("cache-root")
	mid, kMid := keys("cache-mid")
	_, kLeaf := keys("cache-leaf")

	c1, err := Delegate(root, kMid, kRoot, tag.All(), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Delegate(mid, kLeaf, kMid, tag.All(), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTransitivity(c2, c1)
	if err != nil {
		t.Fatal(err)
	}
	return tr, c2, NewRevocationStore()
}

// TestWarmVerifyCachesSignatureChecks is the fast-path acceptance
// check: verifying the same chain through a shared cache must cost at
// least 5x fewer signature verifications than verifying it cold.
func TestWarmVerifyCachesSignatureChecks(t *testing.T) {
	proof, _, _ := chainProof(t)
	const rounds = 20

	cold := func() int64 {
		start := sfkey.SigVerifies()
		for i := 0; i < rounds; i++ {
			ctx := core.NewVerifyContext()
			ctx.Now = cacheNow
			if err := proof.Verify(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return sfkey.SigVerifies() - start
	}()

	cache := core.NewProofCache(64)
	warm := func() int64 {
		start := sfkey.SigVerifies()
		for i := 0; i < rounds; i++ {
			ctx := core.NewVerifyContext()
			ctx.Now = cacheNow
			ctx.Cache = cache
			if err := proof.Verify(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return sfkey.SigVerifies() - start
	}()

	if cold == 0 {
		t.Fatal("cold path performed no signature verifications")
	}
	if warm*5 > cold {
		t.Fatalf("warm path too expensive: cold=%d warm=%d signature verifies (want >=5x reduction)", cold, warm)
	}
}

// TestEpochBumpKillsCachedVerdict is the revocation acceptance check:
// after a CRL lands in a RevocationStore attached to the cache, the
// previously cached verdict must not be served — re-verification sees
// the revocation and fails.
func TestEpochBumpKillsCachedVerdict(t *testing.T) {
	proof, leafCert, rs := chainProof(t)
	cache := core.NewProofCache(64)
	rs.AttachCache(cache)

	ctx := func() *core.VerifyContext {
		c := core.NewVerifyContext()
		c.Now = cacheNow
		c.Cache = cache
		rs.Bind(c) // Revoked hook plus the store's revocation view
		return c
	}

	// Warm the cache.
	if err := proof.Verify(ctx()); err != nil {
		t.Fatal(err)
	}
	start := sfkey.SigVerifies()
	if err := proof.Verify(ctx()); err != nil {
		t.Fatal(err)
	}
	if n := sfkey.SigVerifies() - start; n != 0 {
		t.Fatalf("warm verify performed %d signature checks, want 0", n)
	}

	// Revoke the leaf certificate: the store bumps the cache epoch.
	signer := sfkey.FromSeed([]byte("cache-mid")) // mid signed the leaf cert
	crl := NewRevocationList(signer, core.Until(cacheNow.Add(time.Hour)), leafCert.Hash())
	if err := rs.Add(crl); err != nil {
		t.Fatal(err)
	}

	if err := proof.Verify(ctx()); err == nil {
		t.Fatal("revoked chain verified from stale cached verdict")
	}
}

// TestFutureCRLBumpsEpochWhenFresh: a CRL installed before its
// NotBefore must invalidate cached verdicts again once it becomes
// fresh, not only at install time.
func TestFutureCRLBumpsEpochWhenFresh(t *testing.T) {
	cache := core.NewProofCache(16)
	rs := NewRevocationStore()
	rs.AttachCache(cache)
	signer, _ := keys("future-crl-signer")

	now := time.Now()
	crl := NewRevocationList(signer, core.Between(now.Add(150*time.Millisecond), now.Add(time.Hour)))
	before := cache.Epoch()
	if err := rs.Add(crl); err != nil {
		t.Fatal(err)
	}
	if cache.Epoch() != before+1 {
		t.Fatalf("epoch after install = %d, want %d", cache.Epoch(), before+1)
	}
	deadline := time.Now().Add(2 * time.Second)
	for cache.Epoch() < before+2 {
		if time.Now().After(deadline) {
			t.Fatal("no second epoch bump when the CRL became fresh")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRevalidationDemandBypassesSharedCache: certificates demanding
// one-time revalidation are context-dependent and must never be
// served from the shared cache — every verifier consults the
// revalidator.
func TestRevalidationDemandBypassesSharedCache(t *testing.T) {
	alice, kAlice := keys("reval-alice")
	_, kBob := keys("reval-bob")
	c, err := SignWithRevalidation(alice, core.SpeaksFor{
		Subject: kBob, Issuer: kAlice, Tag: tag.All(),
	}, "https://reval.example")
	if err != nil {
		t.Fatal(err)
	}
	rv := NewRevalidator()
	cache := core.NewProofCache(64)

	mkCtx := func() *core.VerifyContext {
		ctx := core.NewVerifyContext()
		ctx.Now = cacheNow
		ctx.Cache = cache
		ctx.Revalidate = rv.Revalidate
		return ctx
	}
	if err := c.Verify(mkCtx()); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("revalidation-demanding cert entered the shared cache (len=%d)", cache.Len())
	}
	// Suspension must bite immediately, with no epoch bump needed.
	rv.Suspend(c.Hash())
	if err := c.Verify(mkCtx()); err == nil {
		t.Fatal("suspended certificate verified")
	}
}
