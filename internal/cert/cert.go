// Package cert implements signed certificates: the leaf proofs of the
// Snowflake logic. A certificate encodes a SpeaksFor statement and a
// digital signature by the key controlling the statement's issuer;
// verifying the signature justifies the logical assumption "K says
// (Subject speaks for Issuer regarding T)" (paper section 3).
//
// SPKI's revocation mechanisms — certificate revocation lists and
// one-time revalidations — are expressed as statements consulted
// during verification (section 4.1).
package cert

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// RuleSignedCert is the wire name of the certificate proof leaf
// ("signed-certificate" in the paper's Figure 1).
const RuleSignedCert = "signed-certificate"

func init() {
	core.RegisterLeafDecoder(RuleSignedCert, decodeCert)
}

// Cert is a signed delegation. It implements core.Proof, so a bare
// certificate is already a one-step proof.
type Cert struct {
	// Body is the delegation statement.
	Body core.SpeaksFor
	// Signer is the public key whose signature backs the statement.
	// The body's issuer must be rooted at this key (the key itself,
	// its hash, or a name based on either).
	Signer sfkey.PublicKey
	// RevalidateAt optionally names a one-time revalidation service
	// the verifier must consult (SPKI revalidation).
	RevalidateAt string
	// Signature signs the canonical signing body.
	Signature []byte

	// memo caches the derived forms of a decoded certificate: its
	// signing bytes, body hash, and canonical wire span. It is set only
	// by decodeCert — a certificate that came off the wire is immutable
	// — so the mutable-struct idiom (build a Cert literal, or Sign one,
	// and adjust fields before use) keeps working for locally built
	// certificates, which always derive on demand.
	memo *certMemo
}

type certMemo struct {
	signing []byte
	hash    []byte
	wire    sexp.Sexp
}

// Sign issues a certificate for body with the given private key. The
// body's issuer must be rooted at the signing key: a key cannot give
// away another principal's authority.
func Sign(priv *sfkey.PrivateKey, body core.SpeaksFor) (*Cert, error) {
	return SignWithRevalidation(priv, body, "")
}

// SignWithRevalidation issues a certificate that demands one-time
// revalidation at the named service before each first use.
func SignWithRevalidation(priv *sfkey.PrivateKey, body core.SpeaksFor, revalidateAt string) (*Cert, error) {
	pub := priv.Public()
	if !issuerRootedAt(body.Issuer, pub) {
		return nil, fmt.Errorf("cert: issuer %s is not rooted at signing key %s",
			body.Issuer, pub.Fingerprint())
	}
	c := &Cert{Body: body, Signer: pub, RevalidateAt: revalidateAt}
	c.Signature = priv.Sign(c.signingBytes())
	return c, nil
}

// issuerRootedAt reports whether the statement's issuer is controlled
// by the signing key: the key itself, its hash, or a name rooted at
// either.
func issuerRootedAt(iss principal.Principal, pub sfkey.PublicKey) bool {
	switch p := iss.(type) {
	case principal.Key:
		return p.Pub.Equal(pub)
	case principal.Hash:
		return principal.HashMatchesKey(p, pub)
	case principal.Name:
		return issuerRootedAt(p.Base, pub)
	default:
		return false
	}
}

// signingBytes returns the canonical octets covered by the signature:
// the body statement plus the revalidation demand, so neither can be
// altered or stripped.
func (c *Cert) signingBytes() []byte {
	if c.memo != nil {
		return c.memo.signing
	}
	kids := []sexp.Sexp{sexp.String("cert-body"), c.Body.Sexp()}
	if c.RevalidateAt != "" {
		kids = append(kids, sexp.List(sexp.String("revalidate"), sexp.String(c.RevalidateAt)))
	}
	return sexp.List(kids...).Canonical()
}

// Hash identifies the certificate for revocation purposes: the hash
// of its signed body.
func (c *Cert) Hash() []byte {
	if c.memo != nil {
		return c.memo.hash
	}
	return sfkey.HashBytes(c.signingBytes())
}

// Conclusion implements core.Proof.
func (c *Cert) Conclusion() core.SpeaksFor { return c.Body }

// Children implements core.Proof; a certificate is a leaf.
func (c *Cert) Children() []core.Proof { return nil }

// Verify implements core.Proof: it checks the signature, the issuer
// rooting, the revocation state, and any revalidation demand.
// Expiration is not checked here — validity is part of the statement,
// and request matching (core.Authorize) enforces it.
//
// Verification runs through the context's proof cache: a certificate
// already verified under the current revocation epoch costs a lookup,
// not a signature check. Certificates demanding one-time revalidation
// are context-dependent (the revalidator is consulted per verifier)
// and never enter the shared cache.
func (c *Cert) Verify(ctx *core.VerifyContext) error {
	return ctx.VerifyCached(c, func() error { return c.check(ctx, nil) })
}

// check is the uncached verification body. sigOK, when non-nil,
// carries the verdict of a batched signature check (VerifyBatch) that
// already covered this certificate; nil means check the signature
// here. Everything else — issuer rooting, revocation, revalidation —
// is evaluated at call time either way, so a batched certificate obeys
// exactly the revocation state an individually verified one would.
func (c *Cert) check(ctx *core.VerifyContext, sigOK *bool) error {
	if !issuerRootedAt(c.Body.Issuer, c.Signer) {
		return fmt.Errorf("cert: issuer %s not rooted at signer %s", c.Body.Issuer, c.Signer.Fingerprint())
	}
	if sigOK != nil {
		if !*sigOK {
			return fmt.Errorf("cert: bad signature by %s", c.Signer.Fingerprint())
		}
	} else if !c.Signer.Verify(c.signingBytes(), c.Signature) {
		return fmt.Errorf("cert: bad signature by %s", c.Signer.Fingerprint())
	}
	if ctx.Revoked != nil && ctx.Revoked(c.Hash()) {
		return fmt.Errorf("cert: certificate revoked")
	}
	if c.RevalidateAt != "" {
		if ctx.Revalidate == nil {
			return fmt.Errorf("cert: certificate demands revalidation at %q but verifier has no revalidator", c.RevalidateAt)
		}
		if err := ctx.Revalidate(c.Hash(), c.RevalidateAt); err != nil {
			return fmt.Errorf("cert: revalidation failed: %w", err)
		}
	}
	return nil
}

// ContextDependent reports whether this certificate's verdict depends
// on verifier-local state: one-time revalidation must be performed by
// each verifier, so such certificates stay out of shared proof
// caches. Plain revoked-or-not state is epoch-tracked and shareable.
func (c *Cert) ContextDependent() bool { return c.RevalidateAt != "" }

// Sexp implements core.Proof. For a decoded certificate it returns
// the memoized canonical wire span (re-encoding is a copy, not a tree
// walk).
func (c *Cert) Sexp() sexp.Sexp {
	if c.memo != nil {
		return c.memo.wire
	}
	kids := []sexp.Sexp{
		sexp.String("proof"),
		sexp.String(RuleSignedCert),
		c.Body.Sexp(),
		sexp.List(sexp.String("signer"), c.Signer.Sexp()),
		sexp.List(sexp.String("signature"), sexp.Atom(c.Signature)),
	}
	if c.RevalidateAt != "" {
		kids = append(kids, sexp.List(sexp.String("revalidate"), sexp.String(c.RevalidateAt)))
	}
	return sexp.List(kids...)
}

func decodeCert(e sexp.Sexp) (core.Proof, error) {
	if e.Len() < 5 {
		return nil, fmt.Errorf("cert: malformed signed-certificate proof")
	}
	body, err := core.SpeaksForFromSexp(e.Nth(2))
	if err != nil {
		return nil, fmt.Errorf("cert: body: %w", err)
	}
	signerE := e.Child("signer")
	sigE := e.Child("signature")
	if signerE == nil || signerE.Len() != 2 || sigE == nil || sigE.Len() != 2 || !sigE.Nth(1).IsAtom() {
		return nil, fmt.Errorf("cert: missing signer or signature")
	}
	pub, err := sfkey.PublicFromSexp(signerE.Nth(1))
	if err != nil {
		return nil, fmt.Errorf("cert: signer: %w", err)
	}
	c := &Cert{
		Body:      body,
		Signer:    pub,
		Signature: append([]byte(nil), sigE.Nth(1).Bytes()...),
	}
	if rv := e.Child("revalidate"); rv != nil {
		if rv.Len() != 2 || !rv.Nth(1).IsAtom() {
			return nil, fmt.Errorf("cert: malformed revalidate clause")
		}
		c.RevalidateAt = rv.Nth(1).Text()
	}
	// The signing bytes are derived from the received spans rather than
	// by rebuilding the body tree: the signature then covers exactly
	// what was sent, and the memo costs a few span copies.
	kids := []sexp.Sexp{sexp.String("cert-body"), sexp.Raw(e.Nth(2).Canonical())}
	if c.RevalidateAt != "" {
		kids = append(kids, sexp.Raw(e.Child("revalidate").Canonical()))
	}
	signing := sexp.List(kids...).Canonical()
	c.memo = &certMemo{
		signing: signing,
		hash:    sfkey.HashBytes(signing),
		wire:    sexp.Raw(e.Canonical()),
	}
	return c, nil
}

// Delegate is the everyday convenience used across the system: priv's
// key delegates to subject the authority to speak for issuer (usually
// priv's own key principal) regarding t within v.
func Delegate(priv *sfkey.PrivateKey, subject, issuer principal.Principal, t tag.Tag, v core.Validity) (*Cert, error) {
	return Sign(priv, core.SpeaksFor{Subject: subject, Issuer: issuer, Tag: t, Validity: v})
}

// SelfIssuer returns the key principal for priv, the usual issuer of
// its delegations.
func SelfIssuer(priv *sfkey.PrivateKey) principal.Key {
	return principal.KeyOf(priv.Public())
}

// Equal reports whether two certificates are byte-identical.
func (c *Cert) Equal(o *Cert) bool {
	return o != nil && bytes.Equal(c.signingBytes(), o.signingBytes()) &&
		bytes.Equal(c.Signature, o.Signature)
}
