package cert

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Control-plane tag conventions: the same speaks-for machinery that
// authorizes data-plane requests guards the management surface. A
// directory (or any daemon) is configured with an OPERATOR principal;
// a caller may mutate the daemon's state only by proving that its
// request speaks for that operator regarding the operation's control
// tag:
//
//	(tag (sf-ctl admin))    admin endpoints: CRL install, reload
//	(tag (sf-ctl publish))  publish and remove
//
// An operator mints credentials exactly like any other delegation —
// cert.Delegate(operatorKey, adminKey, operator, CtlTag(CtlAdmin), v)
// — and revokes them with an ordinary CRL, so a compromised admin
// credential is locked out through the very pipeline it administers.
// CtlAllTag covers both operations; directory daemons use it for the
// credential backing their own gossip pushes (a push is a publish,
// remove, or CRL install at the peer).
const (
	// CtlAdmin names the admin operation class (CRL install/reload).
	CtlAdmin = "admin"
	// CtlPublish names the publish operation class (publish/remove).
	CtlPublish = "publish"
	// ctlLabel is the distinguishing first element of control tags; no
	// data-plane tag convention uses it, so a control credential can
	// never be replayed against a data-plane resource or vice versa.
	ctlLabel = "sf-ctl"
)

// CtlTag returns the control tag for one operation class:
// (tag (sf-ctl <op>)).
func CtlTag(op string) tag.Tag {
	return tag.ListOf(tag.Literal(ctlLabel), tag.Literal(op))
}

// CtlAllTag returns the control tag covering every operation class:
// (tag (sf-ctl (* set admin publish))).
func CtlAllTag() tag.Tag {
	return tag.ListOf(tag.Literal(ctlLabel), tag.SetOf(tag.Literal(CtlAdmin), tag.Literal(CtlPublish)))
}

// DelegateCtl mints an operator credential: priv (the operator key,
// or any key already speaking for the operator) delegates control
// authority over the listed operation classes to the recipient for
// ttl. It is sugar over Delegate with the control-tag conventions
// applied; revoke it like any certificate (its Hash on a CRL).
func DelegateCtl(priv *sfkey.PrivateKey, to principal.Principal, ttl time.Duration, ops ...string) (*Cert, error) {
	var t tag.Tag
	switch len(ops) {
	case 0:
		t = CtlAllTag()
	case 1:
		t = CtlTag(ops[0])
	default:
		elems := make([]tag.Tag, len(ops))
		for i, op := range ops {
			elems[i] = tag.Literal(op)
		}
		t = tag.ListOf(tag.Literal(ctlLabel), tag.SetOf(elems...))
	}
	v := core.Forever
	if ttl > 0 {
		v = core.Between(time.Now().Add(-time.Minute), time.Now().Add(ttl))
	}
	return Delegate(priv, to, principal.KeyOf(priv.Public()), t, v)
}

// LoadCertFile reads every certificate S-expression in the file —
// one per line or concatenated, like LoadCRLFile — and returns them
// in order. Daemons load their control-plane credential chains with
// it. Signatures are NOT verified here; the prover re-verifies every
// certificate before it authorizes anything.
func LoadCertFile(path string) ([]*Cert, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var certs []*Cert
	n := 0
	for {
		raw = bytes.TrimLeft(raw, " \t\r\n")
		if len(raw) == 0 {
			return certs, nil
		}
		e, used, err := sexp.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("cert: %s: cert %d: %w", path, n+1, err)
		}
		p, err := core.ProofFromSexp(e)
		if err != nil {
			return nil, fmt.Errorf("cert: %s: cert %d: %w", path, n+1, err)
		}
		c, ok := p.(*Cert)
		if !ok {
			return nil, fmt.Errorf("cert: %s: cert %d is %T, not a signed certificate", path, n+1, p)
		}
		certs = append(certs, c)
		raw = raw[used:]
		n++
	}
}
