package cert

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
)

// TestRevocationStoreSweep: lapsed CRLs are dropped from the store
// and the hash index, but the dedup set keeps them from being
// reinstalled (a peer re-gossiping a lapsed list must not bump the
// epoch every round).
func TestRevocationStoreSweep(t *testing.T) {
	priv, _ := sfkey.Generate()
	now := time.Now()
	lapsed := NewRevocationList(priv, core.Between(now.Add(-2*time.Hour), now.Add(-time.Hour)), []byte("old-cert"))
	fresh := NewRevocationList(priv, core.Between(now.Add(-time.Hour), now.Add(time.Hour)), []byte("live-cert"))
	unbounded := NewRevocationList(priv, core.Forever, []byte("forever-cert"))

	rs := NewRevocationStore()
	for _, rl := range []*RevocationList{lapsed, fresh, unbounded} {
		if err := rs.Add(rl); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(rs.Lists()); n != 3 {
		t.Fatalf("installed %d lists, want 3", n)
	}

	if dropped := rs.Sweep(now); dropped != 1 {
		t.Fatalf("swept %d lists, want 1", dropped)
	}
	if n := len(rs.Lists()); n != 2 {
		t.Fatalf("%d lists after sweep, want 2", n)
	}
	// The index survives for live lists…
	if !rs.RevokedAt(now)([]byte("live-cert")) || !rs.RevokedAt(now)([]byte("forever-cert")) {
		t.Fatal("sweep dropped live revocations from the index")
	}
	// …and the lapsed hash is gone from it.
	if rs.RevokedAt(now.Add(-90 * time.Minute))([]byte("old-cert")) {
		t.Fatal("lapsed CRL still answers through the index after sweep")
	}

	// Reinstalling the lapsed list is a dedup'd no-op: no epoch bump.
	epoch := core.SharedProofCache().Epoch()
	added, err := rs.AddNew(lapsed)
	if err != nil || added {
		t.Fatalf("lapsed CRL reinstalled after sweep: added=%v err=%v", added, err)
	}
	if core.SharedProofCache().Epoch() != epoch {
		t.Fatal("re-gossiped lapsed CRL bumped the epoch")
	}

	// Second sweep: nothing left to drop.
	if dropped := rs.Sweep(now); dropped != 0 {
		t.Fatalf("second sweep dropped %d", dropped)
	}
}

// TestRevokedAtIndex: the hash-set index answers exactly like the old
// linear scan, including freshness windows.
func TestRevokedAtIndex(t *testing.T) {
	priv, _ := sfkey.Generate()
	now := time.Now()
	h1, h2 := []byte("cert-1"), []byte("cert-2")
	windowed := NewRevocationList(priv, core.Between(now, now.Add(time.Hour)), h1)
	rs := NewRevocationStore()
	if err := rs.Add(windowed); err != nil {
		t.Fatal(err)
	}
	if !rs.RevokedAt(now.Add(time.Minute))(h1) {
		t.Fatal("listed hash not revoked inside the window")
	}
	if rs.RevokedAt(now.Add(2 * time.Hour))(h1) {
		t.Fatal("revoked after the CRL lapsed")
	}
	if rs.RevokedAt(now.Add(-time.Minute))(h1) {
		t.Fatal("revoked before the CRL is fresh")
	}
	if rs.RevokedAt(now.Add(time.Minute))(h2) {
		t.Fatal("unlisted hash revoked")
	}

	// Two lists naming the same hash: either window suffices.
	later := NewRevocationList(priv, core.Between(now.Add(2*time.Hour), now.Add(3*time.Hour)), h1)
	if err := rs.Add(later); err != nil {
		t.Fatal(err)
	}
	if !rs.RevokedAt(now.Add(150 * time.Minute))(h1) {
		t.Fatal("second list's window not honored")
	}

	// The issuer-matched predicate rides the same index.
	other, _ := sfkey.Generate()
	otherList := NewRevocationList(other, core.Forever, h2)
	if err := rs.Add(otherList); err != nil {
		t.Fatal(err)
	}
	pred := rs.RevokedByIssuerAt(now.Add(time.Minute))
	issuerKey := keyOfSigner(priv)
	otherKey := keyOfSigner(other)
	if !pred(h1, issuerKey) {
		t.Fatal("issuer-matched revocation missed")
	}
	if pred(h1, otherKey) {
		t.Fatal("wrong issuer matched")
	}
	if !pred(h2, otherKey) {
		t.Fatal("second issuer's revocation missed")
	}
}

func keyOfSigner(priv *sfkey.PrivateKey) string {
	return principal.KeyOf(priv.Public()).Key()
}
