package cert

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/sexp"
)

// LoadCRLFile reads every CRL S-expression in the file and returns
// them in order. It accepts both layouts that grew in the daemons:
// one CRL per line and whole-file concatenated expressions (and any
// mix — the parser consumes one expression at a time and whitespace
// between expressions is skipped), so the same CRL file works in
// every daemon. Signatures are NOT verified here; installation
// (RevocationStore.Add / AddNew) verifies before anything takes
// effect.
func LoadCRLFile(path string) ([]*RevocationList, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var lists []*RevocationList
	n := 0
	for {
		raw = bytes.TrimLeft(raw, " \t\r\n")
		if len(raw) == 0 {
			return lists, nil
		}
		e, used, err := sexp.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("cert: %s: crl %d: %w", path, n+1, err)
		}
		rl, err := RevocationListFromSexp(e)
		if err != nil {
			return nil, fmt.Errorf("cert: %s: crl %d: %w", path, n+1, err)
		}
		lists = append(lists, rl)
		raw = raw[used:]
		n++
	}
}

// LoadFile reads the CRL file (LoadCRLFile) and installs every list
// through AddNewBatch, returning the lists that were newly installed
// and how many the file held in total. Because installation
// deduplicates, calling LoadFile again on the same (possibly
// extended) file is the hot reload path: only genuinely new CRLs bump
// the proof-cache epoch — once for the whole file, not once per list
// — so a no-op reload costs no cache flush, and the returned slice is
// exactly what a directory should gossip onward to peers.
func (s *RevocationStore) LoadFile(path string) (added []*RevocationList, total int, err error) {
	lists, err := LoadCRLFile(path)
	if err != nil {
		return nil, 0, err
	}
	ok, errs := s.AddNewBatch(lists)
	for i, rl := range lists {
		if errs[i] != nil {
			return added, len(lists), fmt.Errorf("cert: %s: crl %d: %w", path, i+1, errs[i])
		}
		if ok[i] {
			added = append(added, rl)
		}
	}
	return added, len(lists), nil
}
