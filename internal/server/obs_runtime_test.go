package server

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/channel/plain"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rmi"
)

// TestHistogramExpositionFormat locks the Prometheus histogram text
// convention byte-for-byte: cumulative _bucket series ending at
// le="+Inf", then _sum and _count. Dashboards parse this exact shape;
// a drifted renderer fails silently at scrape time, so the format is
// pinned here instead.
func TestHistogramExpositionFormat(t *testing.T) {
	h := obs.NewHistogram("sf_test_seconds", "Test histogram.", 0.5, 1, 10)
	for _, v := range []float64{0.25, 0.75, 2, 20} {
		h.Observe(v)
	}
	want := strings.Join([]string{
		`# HELP sf_test_seconds Test histogram.`,
		`# TYPE sf_test_seconds histogram`,
		`sf_test_seconds_bucket{le="0.5"} 1`,
		`sf_test_seconds_bucket{le="1"} 2`,
		`sf_test_seconds_bucket{le="10"} 3`,
		`sf_test_seconds_bucket{le="+Inf"} 4`,
		`sf_test_seconds_sum 23`,
		`sf_test_seconds_count 4`,
	}, "\n") + "\n"
	if got := renderHistogram(h); got != want {
		t.Fatalf("exposition drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// expoSample is one parsed sample line: bare name (labels stripped)
// and value.
type expoSample struct {
	name  string
	value float64
}

// parseExposition lints the raw text while parsing it: every sample
// must follow a # TYPE for its family, # HELP (when present) must
// immediately precede its # TYPE, and every name must be syntactically
// valid. Returns family->type and the samples in order.
func parseExposition(t *testing.T, text string) (map[string]string, []expoSample) {
	t.Helper()
	types := make(map[string]string)
	var samples []expoSample
	var pendingHelp string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("HELP line without text: %q", line)
			}
			pendingHelp = f[2]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := f[2], f[3]
			if pendingHelp != "" && pendingHelp != name {
				t.Fatalf("HELP for %s not followed by its TYPE (got %s)", pendingHelp, name)
			}
			pendingHelp = ""
			if !metricNameRe.MatchString(name) {
				t.Fatalf("invalid metric name %q", name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q for %s", typ, name)
			}
			types[name] = typ
			continue
		}
		if pendingHelp != "" {
			t.Fatalf("HELP for %s not followed by a TYPE line", pendingHelp)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		full := line[:sp]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		bare := full
		if i := strings.IndexByte(bare, '{'); i >= 0 {
			bare = bare[:i]
		}
		if !metricNameRe.MatchString(bare) {
			t.Fatalf("invalid sample name %q", bare)
		}
		family := bare
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(bare, suf); f != bare && types[f] == "histogram" {
				family = f
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		samples = append(samples, expoSample{name: full, value: v})
	}
	return types, samples
}

// TestMetricsExpositionLint scrapes a live runtime's /metrics twice
// and lints the output like a strict Prometheus parser would:
// HELP/TYPE pairing, name syntax, counters monotone across scrapes,
// histogram buckets cumulative with le="+Inf" equal to _count. It
// also checks the rest of the admin observability surface answers.
func TestMetricsExpositionLint(t *testing.T) {
	rt := New("lint-test")
	defer rt.Shutdown()
	pc := core.NewProofCache(8)
	rt.Metrics().Register(ProofCacheCollector(pc))
	mux := rt.AdminMux()

	// Put traffic on every surface so the lint sees non-trivial values.
	lat := rt.Latencies()
	lat.ColdAdmit.Observe(0.42)
	lat.WarmAdmit.Observe(0.0002)
	rt.Audit().Append(obs.Decision{Layer: "test", Verdict: obs.VerdictAdmit})
	_, span := rt.Tracer().Start(context.Background(), "lint.span")
	span.End()
	pc.Lookup([32]byte{1}, time.Now(), 0)

	ts := httptest.NewServer(mux)
	defer ts.Close()
	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	first := scrape()
	types, samples1 := parseExposition(t, first)

	// The standard latency set must be present as histograms.
	for _, name := range []string{
		"sf_admit_cold_seconds", "sf_admit_warm_seconds",
		"sf_publish_ack_seconds", "sf_gossip_round_seconds",
		"sf_crl_install_seconds",
	} {
		if types[name] != "histogram" {
			t.Fatalf("%s: type %q, want histogram", name, types[name])
		}
	}

	// Histogram invariants: buckets cumulative, +Inf bucket == _count.
	values := make(map[string]float64)
	for _, s := range samples1 {
		values[s.name] = s.value
	}
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		prev := -1.0
		var inf float64
		for _, s := range samples1 {
			if !strings.HasPrefix(s.name, name+"_bucket{") {
				continue
			}
			if s.value < prev {
				t.Fatalf("%s buckets not cumulative: %q drops below %g", name, s.name, prev)
			}
			prev = s.value
			inf = s.value
		}
		if count := values[name+"_count"]; inf != count {
			t.Fatalf("%s: le=\"+Inf\" bucket %g != _count %g", name, inf, count)
		}
	}

	// Bump counters between scrapes; every counter must be monotone.
	pc.Lookup([32]byte{2}, time.Now(), 0)
	rt.Audit().Append(obs.Decision{Layer: "test", Verdict: obs.VerdictDeny})
	lat.ColdAdmit.Observe(1.5)
	_, samples2 := parseExposition(t, scrape())
	after := make(map[string]float64)
	for _, s := range samples2 {
		after[s.name] = s.value
	}
	for _, s := range samples1 {
		bare := s.name
		if i := strings.IndexByte(bare, '{'); i >= 0 {
			bare = bare[:i]
		}
		monotone := types[bare] == "counter" ||
			strings.HasSuffix(bare, "_bucket") || strings.HasSuffix(bare, "_count") || strings.HasSuffix(bare, "_sum")
		if !monotone {
			continue
		}
		v2, ok := after[s.name]
		if !ok {
			t.Fatalf("counter %q vanished between scrapes", s.name)
		}
		if v2 < s.value {
			t.Fatalf("counter %q went backwards: %g -> %g", s.name, s.value, v2)
		}
	}

	// The rest of the debug surface answers on the same mux.
	for _, path := range []string{"/debug/trace", "/debug/decisions", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// drainService blocks one call until released so the test can shut
// the runtime down with the call in flight.
type drainService struct {
	entered chan struct{}
	release chan struct{}
}

type drainArgs struct{ Msg string }
type drainReply struct{ Msg string }

func (s *drainService) Hold(args drainArgs, reply *drainReply) error {
	close(s.entered)
	<-s.release
	reply.Msg = args.Msg
	return nil
}

// TestServeRMIGracefulShutdown: a call in flight when Shutdown starts
// must complete — the runtime closes the listener first (no new
// connections) and drains dispatches before tearing channels down.
func TestServeRMIGracefulShutdown(t *testing.T) {
	rt := New("rmi-drain-test")
	rt.Logf = func(string, ...any) {}
	rt.ShutdownTimeout = 5 * time.Second

	svc := &drainService{entered: make(chan struct{}), release: make(chan struct{})}
	srv := rmi.NewServer()
	if err := srv.RegisterOpen("drain", svc); err != nil {
		t.Fatal(err)
	}
	l, err := plain.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rt.ServeRMI(l, srv)

	c, err := rmi.Dial(plain.Dialer{}, l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	callErr := make(chan error, 1)
	var reply drainReply
	go func() {
		callErr <- c.Call("drain", "Hold", drainArgs{Msg: "held"}, &reply)
	}()
	select {
	case <-svc.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("call never entered dispatch")
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		close(svc.release)
	}()
	rt.Shutdown()

	select {
	case err := <-callErr:
		if err != nil {
			t.Fatalf("in-flight call failed across shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call never completed")
	}
	if reply.Msg != "held" {
		t.Fatalf("reply = %+v", reply)
	}

	// The listener is down: new dials fail or are refused on first call.
	if c2, err := rmi.Dial(plain.Dialer{}, l.Addr().String(), nil); err == nil {
		var r drainReply
		if err := c2.Call("drain", "Hold", drainArgs{Msg: "late"}, &r); err == nil {
			t.Fatal("call after shutdown succeeded")
		}
		c2.Close()
	}
}
