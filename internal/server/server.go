// Package server is the shared daemon runtime behind every sf-*
// command. Before it existed, each daemon hand-rolled the same
// scaffolding — listener setup, an admin mux, SIGHUP handling, CRL
// file wiring, periodic sweeps, shutdown — and the five copies had
// already drifted (sf-certd had hot CRL reload, sf-dbserver a
// different admin surface, sf-gateway none of either). The runtime
// owns that scaffolding once:
//
//   - Serve starts HTTP listeners whose lifecycle the runtime owns;
//     Wait blocks until SIGINT/SIGTERM (or Shutdown) and then drains
//     them gracefully.
//   - OnSIGHUP registers hot-reload hooks (CRL re-reads).
//   - Every schedules background maintenance (store sweeps,
//     Prover.Sweep, WAL syncs) on tickers that stop with the daemon —
//     replacing ad-hoc per-daemon heuristics like the gateway's
//     "sweep every 256 digested proofs".
//   - Metrics is a Prometheus-text mirror of the daemons' counters,
//     served at /metrics on the admin mux (AdminMux/ServeAdmin),
//     with ready-made collectors for the shared proof cache and the
//     prover.
//   - WireCRLFile is the one implementation of "-crl file + SIGHUP
//     reload + admin reload endpoint" that sf-certd and sf-dbserver
//     previously duplicated with different bugs.
//
// The runtime is mechanism only: it never decides what is authorized.
// Control-plane authorization (who may call the admin endpoints the
// runtime hosts) is httpauth.CtlGuard's job, wired by each daemon.
package server

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cert"
	"repro/internal/principal"
)

// Runtime bundles the daemon scaffolding. Construct with New, wire
// listeners and hooks, then Wait. Safe for concurrent use.
type Runtime struct {
	// Name prefixes log lines ("sf-certd").
	Name string
	// Logf receives log lines; nil means log.Printf.
	Logf func(format string, args ...any)
	// ShutdownTimeout bounds graceful drain per listener; zero means
	// 5 s.
	ShutdownTimeout time.Duration

	mu       sync.Mutex
	servers  []*http.Server
	onHUP    []func()
	onStop   []func()
	admin    *http.ServeMux
	metrics  *Metrics
	hupOnce  sync.Once
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	err      error // first fatal error (Fail); reported by Wait
}

// New returns a runtime for the named daemon.
func New(name string) *Runtime {
	return &Runtime{Name: name, stop: make(chan struct{}), done: make(chan struct{})}
}

func (rt *Runtime) logf(format string, args ...any) {
	if rt.Logf != nil {
		rt.Logf(rt.Name+": "+format, args...)
		return
	}
	log.Printf(rt.Name+": "+format, args...)
}

// Printf logs one line under the daemon's name; daemons use it so
// every line carries the same prefix the runtime's own lines do.
func (rt *Runtime) Printf(format string, args ...any) { rt.logf(format, args...) }

// Serve starts an HTTP listener on addr whose lifecycle the runtime
// owns: it is drained gracefully at shutdown. The returned address is
// the bound one (addr may carry port 0 in tests). Serve never blocks.
func (rt *Runtime) Serve(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h}
	rt.mu.Lock()
	rt.servers = append(rt.servers, srv)
	rt.mu.Unlock()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			// A daemon whose listener died must die with it: before the
			// runtime existed this was log.Fatal(http.ListenAndServe(...)),
			// and a supervisor restarted the process. Logging and limping
			// on would leave a zombie serving nothing on its primary port.
			rt.Fail(fmt.Errorf("listener %s: %w", ln.Addr(), err))
		}
	}()
	return ln.Addr().String(), nil
}

// Fail records a fatal error and begins shutdown: Wait returns it,
// and daemons exit non-zero. Daemon-owned listeners the runtime does
// not manage (secure-channel RMI) report their serve errors here so a
// dead listener kills the process instead of zombifying it. Safe to
// call from runtime-owned goroutines: the shutdown runs detached.
func (rt *Runtime) Fail(err error) {
	if err == nil {
		return
	}
	rt.mu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.mu.Unlock()
	rt.logf("fatal: %v", err)
	go rt.Shutdown()
}

// Metrics returns the runtime's metric registry (created lazily).
func (rt *Runtime) Metrics() *Metrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.metrics == nil {
		rt.metrics = NewMetrics()
	}
	return rt.metrics
}

// AdminMux returns the admin mux (created lazily) with /metrics
// already wired to the registry. Daemons hang their own admin
// endpoints off it — guarded by httpauth.CtlGuard where they mutate —
// and expose it with ServeAdmin or inside their main handler.
func (rt *Runtime) AdminMux() *http.ServeMux {
	m := rt.Metrics() // ensure registry exists before first scrape
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.admin == nil {
		rt.admin = http.NewServeMux()
		rt.admin.Handle("/metrics", m)
	}
	return rt.admin
}

// ServeAdmin starts the admin mux on its own listener; empty addr is
// a no-op (admin surface disabled) returning "".
func (rt *Runtime) ServeAdmin(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	bound, err := rt.Serve(addr, rt.AdminMux())
	if err != nil {
		return "", err
	}
	rt.logf("admin listening on %s", bound)
	return bound, nil
}

// Every runs fn every interval until shutdown; a non-positive
// interval disables the job. Long-lived servers schedule their
// Prover.Sweep, store sweeps, and WAL syncs here instead of each
// daemon growing its own goroutine-and-ticker (or worse, a
// per-N-requests heuristic that idles exactly when cleanup matters).
func (rt *Runtime) Every(interval time.Duration, fn func()) {
	if interval <= 0 {
		return
	}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// OnSIGHUP registers a hot-reload hook; the first registration starts
// the signal listener. Hooks run sequentially per signal.
func (rt *Runtime) OnSIGHUP(fn func()) {
	rt.mu.Lock()
	rt.onHUP = append(rt.onHUP, fn)
	rt.mu.Unlock()
	rt.hupOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGHUP)
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			for {
				select {
				case <-rt.stop:
					signal.Stop(ch)
					return
				case <-ch:
					rt.mu.Lock()
					hooks := append([]func(){}, rt.onHUP...)
					rt.mu.Unlock()
					for _, h := range hooks {
						h()
					}
				}
			}
		}()
	})
}

// OnShutdown registers a hook run during Shutdown, after the
// listeners have drained. Hooks run in REVERSE registration order —
// defer semantics — so teardown unwinds setup: a replicator
// registered after the WAL it feeds stops before the WAL closes.
func (rt *Runtime) OnShutdown(fn func()) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.onStop = append(rt.onStop, fn)
}

// Wait blocks until SIGINT/SIGTERM arrives (or Shutdown is called),
// then drains and returns the fatal error, if any (nil on a clean
// signal-driven exit). Daemons end main with it and log.Fatal a
// non-nil result so supervisors see a non-zero exit.
func (rt *Runtime) Wait() error {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-ch:
		rt.logf("received %s, shutting down", s)
	case <-rt.stop:
	}
	signal.Stop(ch)
	rt.Shutdown()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.err
}

// Shutdown drains every listener gracefully (bounded by
// ShutdownTimeout each), stops and JOINS the tickers and signal
// handlers, and only then runs the shutdown hooks — so a sweep tick
// in flight can never touch state a hook is about to tear down (the
// WAL a hook closes, the replicator a hook stops). Idempotent; tests
// drive the runtime through it directly.
func (rt *Runtime) Shutdown() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		timeout := rt.ShutdownTimeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		rt.mu.Lock()
		servers := append([]*http.Server(nil), rt.servers...)
		hooks := append([]func(){}, rt.onStop...)
		rt.mu.Unlock()
		for _, srv := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			if err := srv.Shutdown(ctx); err != nil {
				srv.Close()
			}
			cancel()
		}
		rt.wg.Wait()
		for i := len(hooks) - 1; i >= 0; i-- {
			hooks[i]()
		}
		close(rt.done)
	})
	<-rt.done
}

// Stopping returns a channel closed when shutdown begins; goroutines
// the runtime does not own can select on it.
func (rt *Runtime) Stopping() <-chan struct{} { return rt.stop }

// LoadPrincipalFile reads a principal S-expression from a file — the
// one implementation of every daemon's -operator flag.
func LoadPrincipalFile(path string) (principal.Principal, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := principal.Parse(string(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// WireCRLFile is the one implementation of a daemon's -crl flag: it
// loads path into rs now (returning the load error — daemons fail
// startup on a bad file), registers a SIGHUP hook that re-reads it,
// and returns the same reload function for admin endpoints. apply,
// when non-nil, receives each batch of NEWLY installed lists and
// returns how many stored certificates it evicted (sf-certd evicts
// from its directory and gossips the lists onward; pure verifiers
// pass nil — installing into rs already bumped the proof-cache
// epoch, which is all a verifier needs). On a partial failure (a
// malformed list mid-file) the lists before it ARE installed and
// applied, so their revocations take effect rather than waiting for
// a fixed file.
func (rt *Runtime) WireCRLFile(rs *cert.RevocationStore, path string, apply func(added []*cert.RevocationList) (evicted int)) (reload func() (added, total, evicted int, err error), err error) {
	reload = func() (int, int, int, error) {
		lists, total, err := rs.LoadFile(path)
		evicted := 0
		if len(lists) > 0 && apply != nil {
			evicted = apply(lists)
		}
		return len(lists), total, evicted, err
	}
	_, initial, _, err := reload()
	if err != nil {
		return nil, err
	}
	rt.logf("loaded %d revocation lists from %s", initial, path)
	rt.OnSIGHUP(func() {
		added, total, evicted, err := reload()
		if err != nil {
			rt.logf("SIGHUP crl reload: %v", err)
			return
		}
		rt.logf("SIGHUP reloaded %s: %d new of %d lists, %d certs evicted",
			path, added, total, evicted)
	})
	return reload, nil
}
