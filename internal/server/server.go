// Package server is the shared daemon runtime behind every sf-*
// command. Before it existed, each daemon hand-rolled the same
// scaffolding — listener setup, an admin mux, SIGHUP handling, CRL
// file wiring, periodic sweeps, shutdown — and the five copies had
// already drifted (sf-certd had hot CRL reload, sf-dbserver a
// different admin surface, sf-gateway none of either). The runtime
// owns that scaffolding once:
//
//   - Serve starts HTTP listeners whose lifecycle the runtime owns;
//     Wait blocks until SIGINT/SIGTERM (or Shutdown) and then drains
//     them gracefully.
//   - OnSIGHUP registers hot-reload hooks (CRL re-reads).
//   - Every schedules background maintenance (store sweeps,
//     Prover.Sweep, WAL syncs) on tickers that stop with the daemon —
//     replacing ad-hoc per-daemon heuristics like the gateway's
//     "sweep every 256 digested proofs".
//   - Metrics is a Prometheus-text mirror of the daemons' counters,
//     served at /metrics on the admin mux (AdminMux/ServeAdmin),
//     with ready-made collectors for the shared proof cache and the
//     prover.
//   - WireCRLFile is the one implementation of "-crl file + SIGHUP
//     reload + admin reload endpoint" that sf-certd and sf-dbserver
//     previously duplicated with different bugs.
//
// The runtime is mechanism only: it never decides what is authorized.
// Control-plane authorization (who may call the admin endpoints the
// runtime hosts) is httpauth.CtlGuard's job, wired by each daemon.
package server

import (
	"context"
	"fmt"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cert"
	"repro/internal/channel"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/rmi"
)

// Runtime bundles the daemon scaffolding. Construct with New, wire
// listeners and hooks, then Wait. Safe for concurrent use.
type Runtime struct {
	// Name prefixes log lines ("sf-certd").
	Name string
	// Logf receives log lines; nil means Logger (or log.Printf when
	// neither is set).
	Logf func(format string, args ...any)
	// Logger, when set, receives runtime log lines as structured slog
	// records with a "daemon" attribute; daemons build one with
	// NewLogger from their -log-format flag. Logf takes precedence.
	Logger *slog.Logger
	// ShutdownTimeout bounds graceful drain per listener; zero means
	// 5 s.
	ShutdownTimeout time.Duration

	mu       sync.Mutex
	servers  []*http.Server
	onHUP    []func()
	onStop   []func()
	admin    *http.ServeMux
	metrics  *Metrics
	tracer   *obs.Recorder
	audit    *obs.AuditLog
	lat      *Latencies
	hupOnce  sync.Once
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	err      error // first fatal error (Fail); reported by Wait
}

// New returns a runtime for the named daemon.
func New(name string) *Runtime {
	return &Runtime{Name: name, stop: make(chan struct{}), done: make(chan struct{})}
}

func (rt *Runtime) logf(format string, args ...any) {
	if rt.Logf != nil {
		rt.Logf(rt.Name+": "+format, args...)
		return
	}
	if rt.Logger != nil {
		rt.Logger.Info(fmt.Sprintf(format, args...), "daemon", rt.Name)
		return
	}
	log.Printf(rt.Name+": "+format, args...)
}

// NewLogger builds the slog logger behind every daemon's -log-format
// flag: "text" (the default) renders human-readable lines, "json"
// renders one JSON object per line for log pipelines.
func NewLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// Printf logs one line under the daemon's name; daemons use it so
// every line carries the same prefix the runtime's own lines do.
func (rt *Runtime) Printf(format string, args ...any) { rt.logf(format, args...) }

// Serve starts an HTTP listener on addr whose lifecycle the runtime
// owns: it is drained gracefully at shutdown. The returned address is
// the bound one (addr may carry port 0 in tests). Serve never blocks.
func (rt *Runtime) Serve(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h}
	rt.mu.Lock()
	rt.servers = append(rt.servers, srv)
	rt.mu.Unlock()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			// A daemon whose listener died must die with it: before the
			// runtime existed this was log.Fatal(http.ListenAndServe(...)),
			// and a supervisor restarted the process. Logging and limping
			// on would leave a zombie serving nothing on its primary port.
			rt.Fail(fmt.Errorf("listener %s: %w", ln.Addr(), err))
		}
	}()
	return ln.Addr().String(), nil
}

// ServeRMI runs an RMI server on a secure-channel listener whose
// lifecycle the runtime owns — the RMI counterpart of Serve. At
// shutdown the listener closes first (no new connections), then the
// server drains: dispatches already executing finish (bounded by
// ShutdownTimeout) before the channels are torn down, so a client
// mid-call sees its reply, not a reset. Replaces the daemons'
// hand-rolled close-the-listener-in-a-hook pattern, which dropped
// in-flight calls.
func (rt *Runtime) ServeRMI(l channel.Listener, srv *rmi.Server) {
	rt.wg.Add(2)
	go func() {
		defer rt.wg.Done()
		<-rt.stop
		l.Close()
		timeout := rt.ShutdownTimeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		srv.Drain(timeout)
	}()
	go func() {
		defer rt.wg.Done()
		if err := srv.Serve(l); err != nil {
			select {
			case <-rt.stop:
				// Listener closed by shutdown; expected.
			default:
				rt.Fail(fmt.Errorf("rmi listener: %w", err))
			}
		}
	}()
}

// Fail records a fatal error and begins shutdown: Wait returns it,
// and daemons exit non-zero. Daemon-owned listeners the runtime does
// not manage (secure-channel RMI) report their serve errors here so a
// dead listener kills the process instead of zombifying it. Safe to
// call from runtime-owned goroutines: the shutdown runs detached.
func (rt *Runtime) Fail(err error) {
	if err == nil {
		return
	}
	rt.mu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.mu.Unlock()
	rt.logf("fatal: %v", err)
	go rt.Shutdown()
}

// Metrics returns the runtime's metric registry (created lazily).
func (rt *Runtime) Metrics() *Metrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.metrics == nil {
		rt.metrics = NewMetrics()
	}
	return rt.metrics
}

// Tracer returns the runtime's span recorder (created lazily, with
// its ring-pressure counter registered); daemons hand it to the
// layers they want traced. Spans land at /debug/trace on the admin
// mux.
func (rt *Runtime) Tracer() *obs.Recorder {
	m := rt.Metrics()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.tracer == nil {
		rt.tracer = obs.NewRecorder(0)
		m.Register(TraceCollector(rt.tracer))
	}
	return rt.tracer
}

// Audit returns the runtime's authorization audit log (created
// lazily, with its verdict counters registered); daemons hand it to
// their enforcement points. Decisions land at /debug/decisions on the
// admin mux.
func (rt *Runtime) Audit() *obs.AuditLog {
	m := rt.Metrics()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.audit == nil {
		rt.audit = obs.NewAuditLog(0)
		m.Register(AuditCollector(rt.audit))
	}
	return rt.audit
}

// ObsFlags bundles the observability knobs every daemon exposes the
// same way: the audit JSONL sink, its size-rotation bound, and the
// trace head-sampling rate. RegisterObsFlags declares them before
// flag.Parse; Wire applies them to the runtime after.
type ObsFlags struct {
	AuditLog    *string
	AuditLogMax *int64
	TraceSample *int
}

// RegisterObsFlags declares the shared observability flags on the
// default flag set.
func RegisterObsFlags() *ObsFlags {
	return &ObsFlags{
		AuditLog:    flag.String("audit-log", "", "append authorization decisions as JSONL to this file (empty = ring only)"),
		AuditLogMax: flag.Int64("audit-log-max", 0, "rotate -audit-log to <path>.1 once it reaches this many bytes (0 = never)"),
		TraceSample: flag.Int("trace-sample", 1, "record 1 in N freshly started traces; incoming Sf-Trace headers are always honored (1 = record all)"),
	}
}

// Wire applies the parsed flags: sets the tracer's sampling rate and,
// when -audit-log is set, opens the (possibly rotating) sink, hooks
// SIGHUP to reopen it (so external logrotate works), and closes it on
// shutdown.
func (f *ObsFlags) Wire(rt *Runtime) error {
	rt.Tracer().SetSampleRate(*f.TraceSample)
	if *f.AuditLog == "" {
		return nil
	}
	path := *f.AuditLog
	if err := rt.Audit().OpenSinkRotating(path, *f.AuditLogMax); err != nil {
		return err
	}
	rt.OnSIGHUP(func() {
		if err := rt.Audit().Reopen(); err != nil {
			rt.logf("SIGHUP audit reopen: %v", err)
			return
		}
		rt.logf("SIGHUP reopened audit log %s", path)
	})
	rt.OnShutdown(func() { rt.Audit().CloseSink() })
	return nil
}

// Latencies is the standard set of mesh latency histograms every
// daemon exposes; each names the canonical flow it times.
type Latencies struct {
	// ColdAdmit times admits that did new authorization work (a fresh
	// delegation digested or a remote proof discovered).
	ColdAdmit *obs.Histogram
	// WarmAdmit times admits served from cached verdicts and proofs.
	WarmAdmit *obs.Histogram
	// PublishAck times directory publish from receipt to acknowledgment.
	PublishAck *obs.Histogram
	// GossipRound times one anti-entropy replication round.
	GossipRound *obs.Histogram
	// CRLInstall times a CRL install through eviction-complete.
	CRLInstall *obs.Histogram
}

// Latencies returns the standard histogram set (created and
// registered lazily). AdminMux calls it, so every daemon with an
// admin surface exposes the full set even for flows it never
// exercises — a flat histogram is a dashboard's "no traffic", an
// absent one is a wiring bug.
func (rt *Runtime) Latencies() *Latencies {
	m := rt.Metrics()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.lat == nil {
		rt.lat = &Latencies{
			ColdAdmit:   obs.NewHistogram("sf_admit_cold_seconds", "Cold admit latency: authorization including proof digestion or remote discovery."),
			WarmAdmit:   obs.NewHistogram("sf_admit_warm_seconds", "Warm admit latency: authorization served from cached proofs and verdicts."),
			PublishAck:  obs.NewHistogram("sf_publish_ack_seconds", "Directory publish receipt-to-acknowledgment latency."),
			GossipRound: obs.NewHistogram("sf_gossip_round_seconds", "Anti-entropy gossip round latency."),
			CRLInstall:  obs.NewHistogram("sf_crl_install_seconds", "CRL install through eviction-complete latency."),
		}
		for _, h := range []*obs.Histogram{rt.lat.ColdAdmit, rt.lat.WarmAdmit, rt.lat.PublishAck, rt.lat.GossipRound, rt.lat.CRLInstall} {
			m.RegisterHistogram(h)
		}
	}
	return rt.lat
}

// AdminMux returns the admin mux (created lazily) with the
// observability surface already wired: /metrics (including the
// standard latency histograms), /debug/trace, /debug/decisions, and
// the /debug/pprof handlers. Daemons hang their own admin endpoints
// off it — guarded by httpauth.CtlGuard where they mutate — and
// expose it with ServeAdmin or inside their main handler.
func (rt *Runtime) AdminMux() *http.ServeMux {
	m := rt.Metrics() // ensure registry exists before first scrape
	tr := rt.Tracer()
	au := rt.Audit()
	rt.Latencies()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.admin == nil {
		rt.admin = http.NewServeMux()
		rt.admin.Handle("/metrics", m)
		rt.admin.Handle("/debug/trace", tr)
		rt.admin.Handle("/debug/decisions", au)
		rt.admin.HandleFunc("/debug/pprof/", pprof.Index)
		rt.admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		rt.admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		rt.admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		rt.admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return rt.admin
}

// ServeAdmin starts the admin mux on its own listener; empty addr is
// a no-op (admin surface disabled) returning "".
func (rt *Runtime) ServeAdmin(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	bound, err := rt.Serve(addr, rt.AdminMux())
	if err != nil {
		return "", err
	}
	rt.logf("admin listening on %s", bound)
	return bound, nil
}

// Every runs fn every interval until shutdown; a non-positive
// interval disables the job. Long-lived servers schedule their
// Prover.Sweep, store sweeps, and WAL syncs here instead of each
// daemon growing its own goroutine-and-ticker (or worse, a
// per-N-requests heuristic that idles exactly when cleanup matters).
func (rt *Runtime) Every(interval time.Duration, fn func()) {
	if interval <= 0 {
		return
	}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// OnSIGHUP registers a hot-reload hook; the first registration starts
// the signal listener. Hooks run sequentially per signal.
func (rt *Runtime) OnSIGHUP(fn func()) {
	rt.mu.Lock()
	rt.onHUP = append(rt.onHUP, fn)
	rt.mu.Unlock()
	rt.hupOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGHUP)
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			for {
				select {
				case <-rt.stop:
					signal.Stop(ch)
					return
				case <-ch:
					rt.mu.Lock()
					hooks := append([]func(){}, rt.onHUP...)
					rt.mu.Unlock()
					for _, h := range hooks {
						h()
					}
				}
			}
		}()
	})
}

// OnShutdown registers a hook run during Shutdown, after the
// listeners have drained. Hooks run in REVERSE registration order —
// defer semantics — so teardown unwinds setup: a replicator
// registered after the WAL it feeds stops before the WAL closes.
func (rt *Runtime) OnShutdown(fn func()) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.onStop = append(rt.onStop, fn)
}

// Wait blocks until SIGINT/SIGTERM arrives (or Shutdown is called),
// then drains and returns the fatal error, if any (nil on a clean
// signal-driven exit). Daemons end main with it and log.Fatal a
// non-nil result so supervisors see a non-zero exit.
func (rt *Runtime) Wait() error {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-ch:
		rt.logf("received %s, shutting down", s)
	case <-rt.stop:
	}
	signal.Stop(ch)
	rt.Shutdown()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.err
}

// Shutdown drains every listener gracefully (bounded by
// ShutdownTimeout each), stops and JOINS the tickers and signal
// handlers, and only then runs the shutdown hooks — so a sweep tick
// in flight can never touch state a hook is about to tear down (the
// WAL a hook closes, the replicator a hook stops). Idempotent; tests
// drive the runtime through it directly.
func (rt *Runtime) Shutdown() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		timeout := rt.ShutdownTimeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		rt.mu.Lock()
		servers := append([]*http.Server(nil), rt.servers...)
		hooks := append([]func(){}, rt.onStop...)
		rt.mu.Unlock()
		for _, srv := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			if err := srv.Shutdown(ctx); err != nil {
				srv.Close()
			}
			cancel()
		}
		rt.wg.Wait()
		for i := len(hooks) - 1; i >= 0; i-- {
			hooks[i]()
		}
		close(rt.done)
	})
	<-rt.done
}

// Stopping returns a channel closed when shutdown begins; goroutines
// the runtime does not own can select on it.
func (rt *Runtime) Stopping() <-chan struct{} { return rt.stop }

// LoadPrincipalFile reads a principal S-expression from a file — the
// one implementation of every daemon's -operator flag.
func LoadPrincipalFile(path string) (principal.Principal, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := principal.Parse(string(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// WireCRLFile is the one implementation of a daemon's -crl flag: it
// loads path into rs now (returning the load error — daemons fail
// startup on a bad file), registers a SIGHUP hook that re-reads it,
// and returns the same reload function for admin endpoints. apply,
// when non-nil, receives each batch of NEWLY installed lists and
// returns how many stored certificates it evicted (sf-certd evicts
// from its directory and gossips the lists onward; pure verifiers
// pass nil — installing into rs already bumped the proof-cache
// epoch, which is all a verifier needs). On a partial failure (a
// malformed list mid-file) the lists before it ARE installed and
// applied, so their revocations take effect rather than waiting for
// a fixed file.
func (rt *Runtime) WireCRLFile(rs *cert.RevocationStore, path string, apply func(added []*cert.RevocationList) (evicted int)) (reload func() (added, total, evicted int, err error), err error) {
	crlHist := rt.Latencies().CRLInstall
	reload = func() (int, int, int, error) {
		start := time.Now()
		lists, total, err := rs.LoadFile(path)
		evicted := 0
		if len(lists) > 0 && apply != nil {
			evicted = apply(lists)
		}
		// Only rounds that installed something are CRL installs; a
		// no-op re-read is not a revocation latency sample.
		if len(lists) > 0 {
			crlHist.Since(start)
		}
		return len(lists), total, evicted, err
	}
	_, initial, _, err := reload()
	if err != nil {
		return nil, err
	}
	rt.logf("loaded %d revocation lists from %s", initial, path)
	rt.OnSIGHUP(func() {
		added, total, evicted, err := reload()
		if err != nil {
			rt.logf("SIGHUP crl reload: %v", err)
			return
		}
		rt.logf("SIGHUP reloaded %s: %d new of %d lists, %d certs evicted",
			path, added, total, evicted)
	})
	return reload, nil
}
