package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/prover"
)

// Metrics is a Prometheus-text-format mirror of the daemons' existing
// counters. The S-expression stats endpoints remain the wire-native
// source of truth; this registry re-exports the same numbers in the
// format standard dashboards scrape, at /metrics on the runtime's
// admin mux. Collectors are closures so the registry holds no copies:
// every scrape reads the live counters.
type Metrics struct {
	mu         sync.Mutex
	collectors []Collector
}

// Metric is one sample. Type is "counter" or "gauge" (Prometheus
// semantics: counters only go up — resets excepted — gauges move
// both ways).
type Metric struct {
	Name  string
	Type  string
	Help  string
	Value float64
}

// Counter and Gauge build a Metric of the respective type.
func Counter(name, help string, v float64) Metric {
	return Metric{Name: name, Type: "counter", Help: help, Value: v}
}
func Gauge(name, help string, v float64) Metric {
	return Metric{Name: name, Type: "gauge", Help: help, Value: v}
}

// Collector emits the current value of each metric it covers.
type Collector func(emit func(Metric))

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Register adds a collector; collectors run on every scrape.
func (m *Metrics) Register(c Collector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.collectors = append(m.collectors, c)
}

// Gather runs every collector and returns the samples sorted by name
// (scrape order is stable for tests and diffs).
func (m *Metrics) Gather() []Metric {
	m.mu.Lock()
	cs := append([]Collector(nil), m.collectors...)
	m.mu.Unlock()
	var out []Metric
	for _, c := range cs {
		c(func(s Metric) { out = append(out, s) })
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ServeHTTP renders the exposition format: # HELP / # TYPE header per
// metric name, then the sample.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	seen := map[string]bool{}
	for _, s := range m.Gather() {
		if !seen[s.Name] {
			seen[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help)
			}
			typ := s.Type
			if typ == "" {
				typ = "gauge"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, typ)
		}
		fmt.Fprintf(w, "%s %g\n", s.Name, s.Value)
	}
}

// ProofCacheCollector exports the shared verified-proof cache's
// counters — the fast path every verifying layer (data plane AND,
// since the control-plane refactor, admin/publish/gossip auth) rides.
func ProofCacheCollector(pc *core.ProofCache) Collector {
	return func(emit func(Metric)) {
		emit(Counter("sf_proofcache_hits_total", "Verified-proof cache hits.", float64(pc.Hits())))
		emit(Counter("sf_proofcache_misses_total", "Verified-proof cache misses.", float64(pc.Misses())))
		emit(Counter("sf_proofcache_epoch", "Revocation epoch (bumps on every CRL install).", float64(pc.Epoch())))
		emit(Gauge("sf_proofcache_entries", "Cached verdicts currently held.", float64(pc.Len())))
	}
}

// ProverCollector exports a long-lived prover's work counters
// (gateway, proxy).
func ProverCollector(pv *prover.Prover) Collector {
	return func(emit func(Metric)) {
		st := pv.Stats()
		emit(Gauge("sf_prover_edges", "Delegation-graph edges currently held.", float64(pv.EdgeCount())))
		emit(Counter("sf_prover_traversals_total", "FindProof traversals (including recursive).", float64(st.Traversals)))
		emit(Counter("sf_prover_minted_total", "Delegations minted through closures.", float64(st.Minted)))
		emit(Counter("sf_prover_swept_total", "Expired edges evicted by Sweep.", float64(st.Swept)))
		emit(Counter("sf_prover_shortcut_hits_total", "Goals reached through cached shortcut edges.", float64(st.ShortcutHits)))
		emit(Counter("sf_prover_remote_queries_total", "Directory lookups issued.", float64(st.RemoteQueries)))
		emit(Counter("sf_prover_remote_certs_total", "Fresh proofs digested from directories.", float64(st.RemoteCerts)))
		emit(Counter("sf_prover_invalidated_total", "Edges dropped by directory invalidation events.", float64(st.Invalidated)))
	}
}
