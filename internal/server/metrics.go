package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prover"
)

// Metrics is a Prometheus-text-format mirror of the daemons' existing
// counters. The S-expression stats endpoints remain the wire-native
// source of truth; this registry re-exports the same numbers in the
// format standard dashboards scrape, at /metrics on the runtime's
// admin mux. Collectors are closures so the registry holds no copies:
// every scrape reads the live counters.
type Metrics struct {
	mu         sync.Mutex
	collectors []Collector
	hists      []*obs.Histogram
}

// Metric is one sample. Type is "counter" or "gauge" (Prometheus
// semantics: counters only go up — resets excepted — gauges move
// both ways).
type Metric struct {
	Name  string
	Type  string
	Help  string
	Value float64
}

// Counter and Gauge build a Metric of the respective type.
func Counter(name, help string, v float64) Metric {
	return Metric{Name: name, Type: "counter", Help: help, Value: v}
}
func Gauge(name, help string, v float64) Metric {
	return Metric{Name: name, Type: "gauge", Help: help, Value: v}
}

// Collector emits the current value of each metric it covers.
type Collector func(emit func(Metric))

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Register adds a collector; collectors run on every scrape.
func (m *Metrics) Register(c Collector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.collectors = append(m.collectors, c)
}

// RegisterHistogram adds a histogram to the exposition. Registering a
// second histogram under an already-registered name is a no-op, so
// wiring helpers can register idempotently.
func (m *Metrics) RegisterHistogram(h *obs.Histogram) {
	if h == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, have := range m.hists {
		if have.Name() == h.Name() {
			return
		}
	}
	m.hists = append(m.hists, h)
}

// Histograms returns the registered histograms.
func (m *Metrics) Histograms() []*obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*obs.Histogram(nil), m.hists...)
}

// Gather runs every collector and returns the samples sorted by name
// (scrape order is stable for tests and diffs).
func (m *Metrics) Gather() []Metric {
	m.mu.Lock()
	cs := append([]Collector(nil), m.collectors...)
	m.mu.Unlock()
	var out []Metric
	for _, c := range cs {
		c(func(s Metric) { out = append(out, s) })
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ServeHTTP renders the exposition format: # HELP / # TYPE header per
// metric name, then the samples. Scalars and histograms are merged
// into one name-sorted stream; each histogram renders the Prometheus
// histogram convention — cumulative <name>_bucket{le="..."} series
// ending at le="+Inf", then <name>_sum and <name>_count.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	type block struct{ name, text string }
	var blocks []block
	var cur *block
	for _, s := range m.Gather() {
		if cur == nil || cur.name != s.Name {
			blocks = append(blocks, block{name: s.Name})
			cur = &blocks[len(blocks)-1]
			if s.Help != "" {
				cur.text += fmt.Sprintf("# HELP %s %s\n", s.Name, s.Help)
			}
			typ := s.Type
			if typ == "" {
				typ = "gauge"
			}
			cur.text += fmt.Sprintf("# TYPE %s %s\n", s.Name, typ)
		}
		cur.text += fmt.Sprintf("%s %g\n", s.Name, s.Value)
	}
	for _, h := range m.Histograms() {
		blocks = append(blocks, block{name: h.Name(), text: renderHistogram(h)})
	}
	sort.SliceStable(blocks, func(i, j int) bool { return blocks[i].name < blocks[j].name })
	for _, b := range blocks {
		fmt.Fprint(w, b.text)
	}
}

// renderHistogram writes one histogram's exposition block.
func renderHistogram(h *obs.Histogram) string {
	var b strings.Builder
	name := h.Name()
	if h.Help() != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", name, h.Help())
	}
	fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
	cum, sum, count := h.Snapshot()
	for i, ub := range h.Bounds() {
		fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(ub, 'g', -1, 64), cum[i])
	}
	fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(&b, "%s_sum %g\n", name, sum)
	fmt.Fprintf(&b, "%s_count %d\n", name, count)
	return b.String()
}

// ProofCacheCollector exports the shared verified-proof cache's
// counters — the fast path every verifying layer (data plane AND,
// since the control-plane refactor, admin/publish/gossip auth) rides.
func ProofCacheCollector(pc *core.ProofCache) Collector {
	return func(emit func(Metric)) {
		emit(Counter("sf_proofcache_hits_total", "Verified-proof cache hits.", float64(pc.Hits())))
		emit(Counter("sf_proofcache_misses_total", "Verified-proof cache misses.", float64(pc.Misses())))
		// The epoch is a level, not an event count (and it could in
		// principle be reset with the process): a gauge, per convention.
		emit(Gauge("sf_proofcache_epoch", "Revocation epoch (bumps on every CRL install).", float64(pc.Epoch())))
		emit(Gauge("sf_proofcache_entries", "Cached verdicts currently held.", float64(pc.Len())))
	}
}

// AuditCollector exports an audit log's cumulative verdict counters.
func AuditCollector(l *obs.AuditLog) Collector {
	return func(emit func(Metric)) {
		emit(Counter("sf_audit_admitted_total", "Authorization decisions admitted.", float64(l.Admitted())))
		emit(Counter("sf_audit_denied_total", "Authorization decisions denied.", float64(l.Denied())))
		emit(Counter("sf_audit_challenged_total", "Authorization challenges issued.", float64(l.Challenged())))
	}
}

// TraceCollector exports the span recorder's ring pressure.
func TraceCollector(rec *obs.Recorder) Collector {
	return func(emit func(Metric)) {
		emit(Counter("sf_trace_spans_dropped_total", "Completed spans evicted from the trace ring.", float64(rec.Dropped())))
	}
}

// ProverCollector exports a long-lived prover's work counters
// (gateway, proxy).
func ProverCollector(pv *prover.Prover) Collector {
	return func(emit func(Metric)) {
		st := pv.Stats()
		emit(Gauge("sf_prover_edges", "Delegation-graph edges currently held.", float64(pv.EdgeCount())))
		emit(Counter("sf_prover_traversals_total", "FindProof traversals (including recursive).", float64(st.Traversals)))
		emit(Counter("sf_prover_minted_total", "Delegations minted through closures.", float64(st.Minted)))
		emit(Counter("sf_prover_swept_total", "Expired edges evicted by Sweep.", float64(st.Swept)))
		emit(Counter("sf_prover_swept_verdicts_total", "Cached verdicts evicted alongside swept edges.", float64(st.SweptVerdicts)))
		emit(Counter("sf_prover_shortcut_hits_total", "Goals reached through cached shortcut edges.", float64(st.ShortcutHits)))
		emit(Counter("sf_prover_remote_queries_total", "Directory lookups issued.", float64(st.RemoteQueries)))
		emit(Counter("sf_prover_remote_certs_total", "Fresh proofs digested from directories.", float64(st.RemoteCerts)))
		emit(Counter("sf_prover_remote_rejected_total", "Remote proofs dropped as unverifiable.", float64(st.RemoteRejected)))
		emit(Counter("sf_prover_negcache_hits_total", "Directory lookups skipped by the negative cache.", float64(st.NegCacheHits)))
		emit(Counter("sf_prover_negcache_evicted_total", "Negative-cache entries displaced by overflow.", float64(st.NegCacheEvicted)))
		emit(Counter("sf_prover_invalidated_total", "Edges dropped by directory invalidation events.", float64(st.Invalidated)))
	}
}
