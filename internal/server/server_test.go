package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/sfkey"
)

func quietRuntime(t *testing.T, name string) *Runtime {
	t.Helper()
	rt := New(name)
	rt.Logf = func(string, ...any) {}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestServeAndShutdown(t *testing.T) {
	rt := quietRuntime(t, "test")
	addr, err := rt.Serve("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "alive")
	}))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "alive" {
		t.Fatalf("got %q", body)
	}
	var stopped atomic.Bool
	rt.OnShutdown(func() { stopped.Store(true) })
	rt.Shutdown()
	if !stopped.Load() {
		t.Fatal("shutdown hook did not run")
	}
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Fatal("listener still serving after shutdown")
	}
	rt.Shutdown() // idempotent
}

func TestEveryRunsAndStops(t *testing.T) {
	rt := quietRuntime(t, "test")
	var ticks atomic.Int64
	rt.Every(5*time.Millisecond, func() { ticks.Add(1) })
	rt.Every(0, func() { t.Error("disabled job ran") })

	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ticks.Load() < 3 {
		t.Fatalf("ticker barely ran: %d ticks", ticks.Load())
	}
	rt.Shutdown()
	at := ticks.Load()
	time.Sleep(30 * time.Millisecond)
	if got := ticks.Load(); got != at {
		t.Fatalf("ticker kept running after shutdown: %d -> %d", at, got)
	}
}

func TestAdminMuxServesMetrics(t *testing.T) {
	rt := quietRuntime(t, "test")
	rt.Metrics().Register(func(emit func(Metric)) {
		emit(Counter("sf_test_total", "A test counter.", 7))
	})
	addr, err := rt.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{"# TYPE sf_test_total counter", "sf_test_total 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestServeAdminEmptyAddrDisabled(t *testing.T) {
	rt := quietRuntime(t, "test")
	addr, err := rt.ServeAdmin("")
	if err != nil || addr != "" {
		t.Fatalf("empty admin addr: got %q, %v", addr, err)
	}
}

// TestWireCRLFile exercises the shared -crl wiring: initial load,
// apply hook on new lists only, reload dedup, and partial-failure
// semantics (lists before a malformed one ARE installed and applied).
func TestWireCRLFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "revoked.crl")
	priv, err := sfkey.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rl1 := cert.NewRevocationList(priv, core.Forever, []byte("cert-one"))
	if err := os.WriteFile(path, rl1.Sexp().Transport(), 0o644); err != nil {
		t.Fatal(err)
	}

	rt := quietRuntime(t, "test")
	rs := cert.NewRevocationStore()
	var applied atomic.Int64
	reload, err := rt.WireCRLFile(rs, path, func(added []*cert.RevocationList) int {
		applied.Add(int64(len(added)))
		return 0
	})
	if err != nil {
		t.Fatalf("WireCRLFile: %v", err)
	}
	if applied.Load() != 1 {
		t.Fatalf("initial load applied %d lists, want 1", applied.Load())
	}
	if !rs.Has(rl1.Hash()) {
		t.Fatal("initial load did not install the CRL")
	}

	// Reload of an unchanged file: no new lists, no apply.
	added, total, _, err := reload()
	if err != nil || added != 0 || total != 1 {
		t.Fatalf("no-op reload: added=%d total=%d err=%v", added, total, err)
	}
	if applied.Load() != 1 {
		t.Fatalf("no-op reload ran apply: %d", applied.Load())
	}

	// Extend the file with a second list; reload installs just it.
	rl2 := cert.NewRevocationList(priv, core.Forever, []byte("cert-two"))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("\n"))
	f.Write(rl2.Sexp().Transport())
	f.Close()
	added, total, _, err = reload()
	if err != nil || added != 1 || total != 2 {
		t.Fatalf("extended reload: added=%d total=%d err=%v", added, total, err)
	}
	if applied.Load() != 2 {
		t.Fatalf("extended reload applied %d total, want 2", applied.Load())
	}

	// A missing file at initial load is a startup error.
	rt2 := quietRuntime(t, "test2")
	if _, err := rt2.WireCRLFile(cert.NewRevocationStore(), filepath.Join(dir, "absent.crl"), nil); err == nil {
		t.Fatal("absent CRL file did not fail startup")
	}
}

// TestFailShutsDownAndWaitReports: a dead listener (or any fatal
// condition) must kill the daemon, not zombify it — Fail triggers
// shutdown and Wait surfaces the error for a non-zero exit.
func TestFailShutsDownAndWaitReports(t *testing.T) {
	rt := quietRuntime(t, "test")
	addr, err := rt.Serve("127.0.0.1:0", http.NotFoundHandler())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rt.Wait() }()
	boom := fmt.Errorf("listener died")
	rt.Fail(boom)
	select {
	case err := <-done:
		if err != boom {
			t.Fatalf("Wait returned %v, want the fatal error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after Fail")
	}
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Fatal("listener still serving after Fail")
	}
}

// TestShutdownHooksReverseOrder: teardown unwinds setup, so a
// consumer registered after its dependency stops first (replicator
// before WAL).
func TestShutdownHooksReverseOrder(t *testing.T) {
	rt := quietRuntime(t, "test")
	var order []string
	rt.OnShutdown(func() { order = append(order, "wal-close") })
	rt.OnShutdown(func() { order = append(order, "replicator-stop") })
	rt.Shutdown()
	if len(order) != 2 || order[0] != "replicator-stop" || order[1] != "wal-close" {
		t.Fatalf("hooks ran in order %v, want [replicator-stop wal-close]", order)
	}
}

// TestShutdownJoinsTickersBeforeHooks: an in-flight Every tick must
// finish before teardown hooks run, or a sweep could touch the WAL a
// hook just closed.
func TestShutdownJoinsTickersBeforeHooks(t *testing.T) {
	rt := quietRuntime(t, "test")
	var hookRan atomic.Bool
	var violation atomic.Bool
	rt.OnShutdown(func() { hookRan.Store(true) })
	started := make(chan struct{}, 1)
	rt.Every(time.Millisecond, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(20 * time.Millisecond) // straddle the shutdown
		if hookRan.Load() {
			violation.Store(true)
		}
	})
	<-started
	rt.Shutdown()
	if violation.Load() {
		t.Fatal("shutdown hook ran while a ticker callback was still in flight")
	}
	if !hookRan.Load() {
		t.Fatal("shutdown hook never ran")
	}
}
