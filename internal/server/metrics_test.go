package server

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prover"
)

func scrape(t *testing.T, m *Metrics) string {
	t.Helper()
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return string(body)
}

func TestMetricsFormat(t *testing.T) {
	m := NewMetrics()
	m.Register(func(emit func(Metric)) {
		emit(Gauge("sf_b_gauge", "B.", 2.5))
		emit(Counter("sf_a_total", "A.", 41))
	})
	out := scrape(t, m)
	// Sorted by name, HELP then TYPE then sample.
	wantOrder := []string{
		"# HELP sf_a_total A.",
		"# TYPE sf_a_total counter",
		"sf_a_total 41",
		"# HELP sf_b_gauge B.",
		"# TYPE sf_b_gauge gauge",
		"sf_b_gauge 2.5",
	}
	idx := -1
	for _, line := range wantOrder {
		at := strings.Index(out, line)
		if at < 0 {
			t.Fatalf("missing line %q in:\n%s", line, out)
		}
		if at < idx {
			t.Fatalf("line %q out of order in:\n%s", line, out)
		}
		idx = at
	}
}

func TestMetricsLiveValues(t *testing.T) {
	m := NewMetrics()
	v := 1.0
	m.Register(func(emit func(Metric)) {
		emit(Gauge("sf_live", "", v))
	})
	if !strings.Contains(scrape(t, m), "sf_live 1") {
		t.Fatal("first scrape wrong")
	}
	v = 2
	if !strings.Contains(scrape(t, m), "sf_live 2") {
		t.Fatal("collectors must read live values, not snapshots")
	}
}

func TestProofCacheCollector(t *testing.T) {
	pc := core.NewProofCache(16)
	pc.Lookup([32]byte{1}, timeNow(), core.ViewAny) // one miss
	pc.BumpEpoch()
	m := NewMetrics()
	m.Register(ProofCacheCollector(pc))
	out := scrape(t, m)
	for _, want := range []string{
		"sf_proofcache_misses_total 1",
		"sf_proofcache_epoch 1",
		"sf_proofcache_entries 0",
		"# TYPE sf_proofcache_hits_total counter",
		"# TYPE sf_proofcache_epoch gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestProverCollector(t *testing.T) {
	pv := prover.New()
	m := NewMetrics()
	m.Register(ProverCollector(pv))
	out := scrape(t, m)
	for _, want := range []string{"sf_prover_edges 0", "sf_prover_traversals_total 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// timeNow keeps the proof-cache test honest about its clock without
// importing time twice at call sites.
func timeNow() (t time.Time) { return time.Now() }
