package principal

import (
	"testing"

	"repro/internal/sexp"
	"repro/internal/sfkey"
)

func testKey(seed string) Key {
	return KeyOf(sfkey.FromSeed([]byte(seed)).Public())
}

func TestKeyPrincipal(t *testing.T) {
	a, b := testKey("a"), testKey("b")
	if Equal(a, b) {
		t.Fatal("distinct keys Equal")
	}
	if !Equal(a, testKey("a")) {
		t.Fatal("same key not Equal")
	}
	back, err := FromSexp(a.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, back) {
		t.Fatal("key round trip")
	}
}

func TestHashPrincipal(t *testing.T) {
	k := sfkey.FromSeed([]byte("h")).Public()
	h := HashOfKey(k)
	if !HashMatchesKey(h, k) {
		t.Fatal("hash should match its key")
	}
	other := sfkey.FromSeed([]byte("o")).Public()
	if HashMatchesKey(h, other) {
		t.Fatal("hash matched wrong key")
	}
	back, err := FromSexp(h.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(h, back) {
		t.Fatal("hash round trip")
	}
	doc := HashOfBytes([]byte("document body"))
	if Equal(doc, h) {
		t.Fatal("different digests Equal")
	}
}

func TestNamePrincipal(t *testing.T) {
	k := testKey("alice")
	n := NameOf(k, "mail", "inbox")
	back, err := FromSexp(n.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(n, back) {
		t.Fatal("name round trip")
	}
	if Equal(n, NameOf(k, "mail")) {
		t.Fatal("different paths Equal")
	}
	if Equal(n, NameOf(testKey("bob"), "mail", "inbox")) {
		t.Fatal("different bases Equal")
	}
}

func TestConjCanonicalOrder(t *testing.T) {
	a, b := testKey("a"), testKey("b")
	c1 := ConjOf(a, b)
	c2 := ConjOf(b, a)
	if !Equal(c1, c2) {
		t.Fatal("conjunction should canonicalize part order")
	}
	if !c1.IsFullConjunction() {
		t.Fatal("ConjOf should be a full conjunction")
	}
	th := ThresholdOf(1, a, b)
	if th.IsFullConjunction() {
		t.Fatal("1-of-2 is not full")
	}
	if Equal(c1, th) {
		t.Fatal("different k Equal")
	}
	back, err := FromSexp(c1.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c1, back) {
		t.Fatal("conj round trip")
	}
}

func TestQuotePrincipal(t *testing.T) {
	g, c := testKey("gateway"), testKey("client")
	q := QuoteOf(g, c)
	if Equal(q, QuoteOf(c, g)) {
		t.Fatal("quoting is not symmetric")
	}
	back, err := FromSexp(q.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(q, back) {
		t.Fatal("quote round trip")
	}
	// Nested: gateway quoting (gateway quoting client).
	nested := QuoteOf(g, q)
	back, err = FromSexp(nested.Sexp())
	if err != nil || !Equal(nested, back) {
		t.Fatal("nested quote round trip")
	}
}

func TestChannelAndMAC(t *testing.T) {
	ch := ChannelOf(ChannelSecure, []byte{1, 2, 3, 4})
	back, err := FromSexp(ch.Sexp())
	if err != nil || !Equal(ch, back) {
		t.Fatal("channel round trip")
	}
	if Equal(ch, ChannelOf(ChannelLocal, []byte{1, 2, 3, 4})) {
		t.Fatal("kinds distinguish channels")
	}
	m := MACOf([]byte("secret"))
	back, err = FromSexp(m.Sexp())
	if err != nil || !Equal(m, back) {
		t.Fatal("mac round trip")
	}
	if Equal(m, MACOf([]byte("other"))) {
		t.Fatal("different secrets Equal")
	}
}

func TestFromSexpRejectsMalformed(t *testing.T) {
	bad := []string{
		`(unknown x)`,
		`(hash sha256)`,
		`(hash (l) x)`,
		`(name (hash sha256 |AA==|))`,
		`(k-of-n 2 1 (hash sha256 |AA==|))`,
		`(k-of-n 0 1 (hash sha256 |AA==|))`,
		`(k-of-n x 1 (hash sha256 |AA==|))`,
		`(quoting (hash sha256 |AA==|))`,
		`(channel secure)`,
		`(mac sha256)`,
		`atom`,
	}
	for _, s := range bad {
		e, err := sexp.ParseOne([]byte(s))
		if err != nil {
			t.Fatalf("test input %q does not parse: %v", s, err)
		}
		if _, err := FromSexp(e); err == nil {
			t.Errorf("FromSexp(%s) succeeded, want error", s)
		}
	}
	if _, err := FromSexp(nil); err == nil {
		t.Error("FromSexp(nil) succeeded")
	}
}

func TestParseText(t *testing.T) {
	ch := ChannelOf(ChannelLocal, []byte("pipe-7"))
	p, err := Parse(string(ch.Sexp().Advanced()))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(p, ch) {
		t.Fatal("text parse round trip")
	}
}

func TestStringRenderings(t *testing.T) {
	// Smoke test: String must not panic and must be non-empty and
	// distinct across kinds.
	k := testKey("k")
	ps := []Principal{
		k,
		HashOfBytes([]byte("d")),
		NameOf(k, "n"),
		ConjOf(k, testKey("j")),
		ThresholdOf(1, k, testKey("j")),
		QuoteOf(k, testKey("q")),
		ChannelOf(ChannelSecure, []byte{9}),
		MACOf([]byte("s")),
	}
	seen := map[string]bool{}
	for _, p := range ps {
		s := p.String()
		if s == "" {
			t.Errorf("%T renders empty", p)
		}
		if seen[s] {
			t.Errorf("duplicate rendering %q", s)
		}
		seen[s] = true
	}
}

func TestKeyStability(t *testing.T) {
	// Key() must be stable across construction routes.
	k := testKey("stable")
	p1, _ := FromSexp(k.Sexp())
	if p1.Key() != k.Key() {
		t.Fatal("Key differs across parse round trip")
	}
}
