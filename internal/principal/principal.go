// Package principal implements Snowflake's principals: the entities
// that make statements (paper section 4.2). Beyond SPKI's public keys
// the system admits hashes, SDSI names, threshold (conjunction)
// principals, Lampson-style quoting principals, communication
// channels, and MAC keys — all first-class, so the same logic covers
// a trusted kernel on one host, a secret-key protocol inside a
// domain, and public keys in the wide area.
package principal

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sexp"
	"repro/internal/sfkey"
)

// Principal is any entity that can utter a statement. Principals are
// immutable values; Key returns a canonical encoding usable as a map
// key, and two principals are the same entity exactly when their Keys
// are equal.
type Principal interface {
	// Sexp returns the canonical S-expression form.
	Sexp() sexp.Sexp
	// Key returns the canonical encoding as a string.
	Key() string
	// String returns a compact human-readable rendering.
	String() string
}

// Equal reports whether a and b denote the same principal.
func Equal(a, b Principal) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	// Direct comparisons for the two principal kinds that dominate
	// proof chains, avoiding the wire-form rebuild Key() implies.
	switch pa := a.(type) {
	case Key:
		if pb, ok := b.(Key); ok {
			return pa.Pub.Equal(pb.Pub)
		}
	case Hash:
		if pb, ok := b.(Hash); ok {
			return pa.Alg == pb.Alg && bytes.Equal(pa.Digest, pb.Digest)
		}
	}
	return a.Key() == b.Key()
}

// --- key principal ---------------------------------------------------

// Key is a public-key principal: the key speaks through signatures.
type Key struct {
	Pub sfkey.PublicKey
}

// KeyOf wraps a public key as a principal.
func KeyOf(pub sfkey.PublicKey) Key { return Key{Pub: pub} }

func (k Key) Sexp() sexp.Sexp { return k.Pub.Sexp() }
func (k Key) Key() string      { return k.Sexp().Key() }
func (k Key) String() string   { return "K(" + k.Pub.Fingerprint() + ")" }

// --- hash principal --------------------------------------------------

// Hash is the principal named by a digest: the hash of a key (the
// paper's HKC), a document (HD), or a request. A hash principal says
// only the object it hashes.
type Hash struct {
	Alg    string
	Digest []byte
}

// HashOfKey returns the hash principal of a public key.
func HashOfKey(pub sfkey.PublicKey) Hash {
	return Hash{Alg: sfkey.HashAlg, Digest: pub.Hash()}
}

// HashOfBytes returns the hash principal of arbitrary octets
// (documents, serialized requests).
func HashOfBytes(b []byte) Hash {
	return Hash{Alg: sfkey.HashAlg, Digest: sfkey.HashBytes(b)}
}

// HashOfSexp returns the hash principal of an S-expression's
// canonical form.
func HashOfSexp(e sexp.Sexp) Hash {
	return Hash{Alg: sfkey.HashAlg, Digest: sfkey.HashBytes(e.Canonical())}
}

func (h Hash) Sexp() sexp.Sexp {
	return sexp.List(sexp.String("hash"), sexp.String(h.Alg), sexp.Atom(h.Digest))
}
func (h Hash) Key() string { return h.Sexp().Key() }
func (h Hash) String() string {
	d := h.Digest
	if len(d) > 6 {
		d = d[:6]
	}
	return "H(" + hex.EncodeToString(d) + ")"
}

// --- SDSI name principal ----------------------------------------------

// Name is a linked-local-namespace name: Base's binding for the name
// path. "KC · N" in the paper's Figure 1 is Name{Base: KC, Path: [N]}.
type Name struct {
	Base Principal
	Path []string
}

// NameOf builds base·n1·n2·…
func NameOf(base Principal, path ...string) Name {
	return Name{Base: base, Path: path}
}

func (n Name) Sexp() sexp.Sexp {
	kids := []sexp.Sexp{sexp.String("name"), n.Base.Sexp()}
	for _, p := range n.Path {
		kids = append(kids, sexp.String(p))
	}
	return sexp.List(kids...)
}
func (n Name) Key() string { return n.Sexp().Key() }
func (n Name) String() string {
	return n.Base.String() + "·" + strings.Join(n.Path, "·")
}

// --- conjunction / threshold principal --------------------------------

// Conj is the conjunction of principals: it says s only when every
// part says s. SPKI's threshold subjects generalize to K-of-N; the
// common case K = N is the paper's conjunction ("Alice and the file
// system quoting Alice", section 2.3).
type Conj struct {
	K     int // how many parts must agree; 0 means all
	Parts []Principal
}

// ConjOf returns the all-parts conjunction, canonically ordered.
func ConjOf(parts ...Principal) Conj {
	ps := append([]Principal(nil), parts...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key() < ps[j].Key() })
	return Conj{K: len(ps), Parts: ps}
}

// ThresholdOf returns a K-of-N threshold principal.
func ThresholdOf(k int, parts ...Principal) Conj {
	ps := append([]Principal(nil), parts...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key() < ps[j].Key() })
	return Conj{K: k, Parts: ps}
}

func (c Conj) Sexp() sexp.Sexp {
	k := c.K
	if k == 0 {
		k = len(c.Parts)
	}
	kids := []sexp.Sexp{
		sexp.String("k-of-n"),
		sexp.String(strconv.Itoa(k)),
		sexp.String(strconv.Itoa(len(c.Parts))),
	}
	for _, p := range c.Parts {
		kids = append(kids, p.Sexp())
	}
	return sexp.List(kids...)
}
func (c Conj) Key() string { return c.Sexp().Key() }
func (c Conj) String() string {
	names := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		names[i] = p.String()
	}
	k := c.K
	if k == 0 {
		k = len(c.Parts)
	}
	if k == len(c.Parts) {
		return "(" + strings.Join(names, " ∧ ") + ")"
	}
	return fmt.Sprintf("(%d-of-%d %s)", k, len(c.Parts), strings.Join(names, " "))
}

// IsFullConjunction reports whether every part must agree.
func (c Conj) IsFullConjunction() bool {
	return c.K == 0 || c.K == len(c.Parts)
}

// --- quoting principal --------------------------------------------------

// Quote is Lampson's quoting principal B|A: B claiming to speak on
// behalf of A. The multiplexing gateway of section 6.3 is the
// motivating use.
type Quote struct {
	Quoter Principal // B, the party actually speaking
	Quotee Principal // A, on whose behalf B claims to speak
}

// QuoteOf builds quoter|quotee.
func QuoteOf(quoter, quotee Principal) Quote {
	return Quote{Quoter: quoter, Quotee: quotee}
}

func (q Quote) Sexp() sexp.Sexp {
	return sexp.List(sexp.String("quoting"), q.Quoter.Sexp(), q.Quotee.Sexp())
}
func (q Quote) Key() string    { return q.Sexp().Key() }
func (q Quote) String() string { return q.Quoter.String() + "|" + q.Quotee.String() }

// --- channel principal ---------------------------------------------------

// Channel kinds.
const (
	ChannelSecure = "secure" // cryptographic network channel (section 5.1)
	ChannelLocal  = "local"  // host-vouched in-process channel (section 5.2)
)

// Channel is a communication channel as a principal: it says any
// message emanating from it. Binding identifies the concrete channel
// instance (a session id derived from the key exchange, or the local
// registry's pipe id).
type Channel struct {
	Kind    string
	Binding []byte
}

// ChannelOf builds a channel principal.
func ChannelOf(kind string, binding []byte) Channel {
	return Channel{Kind: kind, Binding: append([]byte(nil), binding...)}
}

func (c Channel) Sexp() sexp.Sexp {
	return sexp.List(sexp.String("channel"), sexp.String(c.Kind), sexp.Atom(c.Binding))
}
func (c Channel) Key() string { return c.Sexp().Key() }
func (c Channel) String() string {
	b := c.Binding
	if len(b) > 4 {
		b = b[:4]
	}
	return "CH-" + c.Kind + "(" + hex.EncodeToString(b) + ")"
}

// --- MAC principal ----------------------------------------------------------

// MAC is a shared-secret message-authentication-code key as a
// principal (the signed-request optimization of section 5.3.1). It is
// named by the hash of the secret so the principal itself reveals
// nothing.
type MAC struct {
	KeyHash []byte
}

// MACOf names the MAC principal for a secret.
func MACOf(secret []byte) MAC {
	return MAC{KeyHash: sfkey.HashBytes(secret)}
}

func (m MAC) Sexp() sexp.Sexp {
	return sexp.List(sexp.String("mac"), sexp.String(sfkey.HashAlg), sexp.Atom(m.KeyHash))
}
func (m MAC) Key() string { return m.Sexp().Key() }
func (m MAC) String() string {
	d := m.KeyHash
	if len(d) > 4 {
		d = d[:4]
	}
	return "MAC(" + hex.EncodeToString(d) + ")"
}

// --- pseudo principal -----------------------------------------------------

// Pseudo is the placeholder principal "?" of section 6.3: a gateway's
// challenge may name the compound principal "gateway quoting ?", and
// the client substitutes its own identity — a shortcut that saves a
// round trip to discover the client's identity.
type Pseudo struct{}

func (Pseudo) Sexp() sexp.Sexp { return sexp.List(sexp.String("pseudo")) }
func (p Pseudo) Key() string    { return p.Sexp().Key() }
func (Pseudo) String() string   { return "?" }

// SubstitutePseudo replaces every Pseudo inside p with actual,
// recursing through compound principals.
func SubstitutePseudo(p, actual Principal) Principal {
	switch v := p.(type) {
	case Pseudo:
		return actual
	case Quote:
		return Quote{
			Quoter: SubstitutePseudo(v.Quoter, actual),
			Quotee: SubstitutePseudo(v.Quotee, actual),
		}
	case Name:
		return Name{Base: SubstitutePseudo(v.Base, actual), Path: v.Path}
	case Conj:
		parts := make([]Principal, len(v.Parts))
		for i, pt := range v.Parts {
			parts[i] = SubstitutePseudo(pt, actual)
		}
		return Conj{K: v.K, Parts: parts}
	default:
		return p
	}
}

// --- parsing ------------------------------------------------------------

// FromSexp decodes any principal form.
func FromSexp(e sexp.Sexp) (Principal, error) {
	if e == nil || !e.IsList() {
		return nil, fmt.Errorf("principal: not a principal expression")
	}
	switch e.Tag() {
	case "public-key":
		pub, err := sfkey.PublicFromSexp(e)
		if err != nil {
			return nil, err
		}
		return Key{Pub: pub}, nil
	case "hash":
		if e.Len() != 3 || !e.Nth(1).IsAtom() || !e.Nth(2).IsAtom() {
			return nil, fmt.Errorf("principal: malformed hash")
		}
		return Hash{Alg: e.Nth(1).Text(), Digest: append([]byte(nil), e.Nth(2).Bytes()...)}, nil
	case "name":
		if e.Len() < 3 {
			return nil, fmt.Errorf("principal: malformed name")
		}
		base, err := FromSexp(e.Nth(1))
		if err != nil {
			return nil, fmt.Errorf("principal: name base: %w", err)
		}
		var path []string
		for i := 2; i < e.Len(); i++ {
			if !e.Nth(i).IsAtom() {
				return nil, fmt.Errorf("principal: name path element %d not an atom", i)
			}
			path = append(path, e.Nth(i).Text())
		}
		return Name{Base: base, Path: path}, nil
	case "k-of-n":
		if e.Len() < 4 {
			return nil, fmt.Errorf("principal: malformed k-of-n")
		}
		k, err := strconv.Atoi(e.Nth(1).Text())
		if err != nil {
			return nil, fmt.Errorf("principal: k-of-n k: %w", err)
		}
		n, err := strconv.Atoi(e.Nth(2).Text())
		if err != nil {
			return nil, fmt.Errorf("principal: k-of-n n: %w", err)
		}
		if n != e.Len()-3 || k < 1 || k > n {
			return nil, fmt.Errorf("principal: k-of-n arity mismatch k=%d n=%d parts=%d", k, n, e.Len()-3)
		}
		parts := make([]Principal, 0, n)
		for i := 3; i < e.Len(); i++ {
			p, err := FromSexp(e.Nth(i))
			if err != nil {
				return nil, fmt.Errorf("principal: k-of-n part: %w", err)
			}
			parts = append(parts, p)
		}
		return Conj{K: k, Parts: parts}, nil
	case "quoting":
		if e.Len() != 3 {
			return nil, fmt.Errorf("principal: malformed quoting")
		}
		quoter, err := FromSexp(e.Nth(1))
		if err != nil {
			return nil, fmt.Errorf("principal: quoter: %w", err)
		}
		quotee, err := FromSexp(e.Nth(2))
		if err != nil {
			return nil, fmt.Errorf("principal: quotee: %w", err)
		}
		return Quote{Quoter: quoter, Quotee: quotee}, nil
	case "channel":
		if e.Len() != 3 || !e.Nth(1).IsAtom() || !e.Nth(2).IsAtom() {
			return nil, fmt.Errorf("principal: malformed channel")
		}
		return Channel{Kind: e.Nth(1).Text(), Binding: append([]byte(nil), e.Nth(2).Bytes()...)}, nil
	case "mac":
		if e.Len() != 3 || !e.Nth(1).IsAtom() || !e.Nth(2).IsAtom() {
			return nil, fmt.Errorf("principal: malformed mac")
		}
		return MAC{KeyHash: append([]byte(nil), e.Nth(2).Bytes()...)}, nil
	case "pseudo":
		return Pseudo{}, nil
	default:
		return nil, fmt.Errorf("principal: unknown principal form %q", e.Tag())
	}
}

// Parse decodes a principal from its textual encoding.
func Parse(s string) (Principal, error) {
	e, err := sexp.ParseOne([]byte(s))
	if err != nil {
		return nil, err
	}
	return FromSexp(e)
}

// HashMatchesKey reports whether hash principal h names public key
// pub; the verification behind the hash-identity proof rule.
func HashMatchesKey(h Hash, pub sfkey.PublicKey) bool {
	return h.Alg == sfkey.HashAlg && bytes.Equal(h.Digest, pub.Hash())
}
