package sexp

import (
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
)

// Limits protecting the parser against hostile input. Proof objects
// arrive from untrusted parties (paper section 4.3), so the parser is
// a security boundary.
const (
	// MaxAtomLen bounds a single atom.
	MaxAtomLen = 1 << 20
	// MaxDepth bounds list nesting.
	MaxDepth = 128
	// MaxTotal bounds the total encoded input accepted.
	MaxTotal = 8 << 20
)

// ErrTruncated is returned when input ends mid-expression.
var ErrTruncated = errors.New("sexp: truncated input")

type parser struct {
	in  []byte
	pos int
}

// Parse decodes one S-expression in canonical, transport, or advanced
// form (auto-detected) and returns it along with the number of input
// bytes consumed.
func Parse(in []byte) (*Sexp, int, error) {
	if len(in) > MaxTotal {
		return nil, 0, fmt.Errorf("sexp: input exceeds %d bytes", MaxTotal)
	}
	p := &parser{in: in}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '{' {
		return p.parseTransport()
	}
	s, err := p.parse(0)
	if err != nil {
		return nil, p.pos, err
	}
	return s, p.pos, nil
}

// ParseOne is Parse but requires the input to contain exactly one
// expression with nothing but whitespace after it.
func ParseOne(in []byte) (*Sexp, error) {
	s, n, err := Parse(in)
	if err != nil {
		return nil, err
	}
	for ; n < len(in); n++ {
		if !isSpace(in[n]) {
			return nil, fmt.Errorf("sexp: trailing garbage at byte %d", n)
		}
	}
	return s, nil
}

func (p *parser) parseTransport() (*Sexp, int, error) {
	start := p.pos
	p.pos++ // '{'
	end := p.pos
	for end < len(p.in) && p.in[end] != '}' {
		end++
	}
	if end >= len(p.in) {
		return nil, start, ErrTruncated
	}
	raw := make([]byte, 0, len(p.in[p.pos:end]))
	for _, c := range p.in[p.pos:end] {
		if !isSpace(c) {
			raw = append(raw, c)
		}
	}
	dec := make([]byte, base64.StdEncoding.DecodedLen(len(raw)))
	n, err := base64.StdEncoding.Decode(dec, raw)
	if err != nil {
		return nil, start, fmt.Errorf("sexp: bad transport base64: %v", err)
	}
	inner := &parser{in: dec[:n]}
	s, err := inner.parse(0)
	if err != nil {
		return nil, start, err
	}
	p.pos = end + 1
	return s, p.pos, nil
}

func (p *parser) parse(depth int) (*Sexp, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("sexp: nesting exceeds %d", MaxDepth)
	}
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	switch c := p.in[p.pos]; {
	case c == '(':
		p.pos++
		list := []*Sexp{}
		for {
			p.skipSpace()
			if p.pos >= len(p.in) {
				return nil, ErrTruncated
			}
			if p.in[p.pos] == ')' {
				p.pos++
				return &Sexp{IsList: true, List: list}, nil
			}
			child, err := p.parse(depth + 1)
			if err != nil {
				return nil, err
			}
			list = append(list, child)
		}
	case c == '[':
		p.pos++
		hint, err := p.parseAtomBody()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ']' {
			return nil, fmt.Errorf("sexp: unterminated display hint at byte %d", p.pos)
		}
		p.pos++
		p.skipSpace()
		body, err := p.parseAtomBody()
		if err != nil {
			return nil, err
		}
		return &Sexp{Octets: body, Hint: string(hint)}, nil
	default:
		body, err := p.parseAtomBody()
		if err != nil {
			return nil, err
		}
		return &Sexp{Octets: body}, nil
	}
}

// parseAtomBody handles verbatim (canonical), token, quoted-string,
// |base64| and #hex# atoms.
func (p *parser) parseAtomBody() ([]byte, error) {
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	c := p.in[p.pos]
	switch {
	case c >= '0' && c <= '9':
		return p.parseVerbatim()
	case c == '"':
		return p.parseQuoted()
	case c == '|':
		return p.parseBase64()
	case c == '#':
		return p.parseHex()
	case isTokenChar(c):
		start := p.pos
		for p.pos < len(p.in) && isTokenChar(p.in[p.pos]) {
			p.pos++
		}
		return append([]byte(nil), p.in[start:p.pos]...), nil
	default:
		return nil, fmt.Errorf("sexp: unexpected byte %q at %d", c, p.pos)
	}
}

// parseVerbatim parses "<len>:<octets>". When the digits are not
// followed by ':', they begin a bare token instead (numbers such as
// "10" inside range tags); canonical encodings always carry the colon,
// so the forms stay unambiguous.
func (p *parser) parseVerbatim() ([]byte, error) {
	start := p.pos
	n := 0
	tooBig := false
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		n = n*10 + int(p.in[p.pos]-'0')
		if n > MaxAtomLen {
			tooBig = true
			n = MaxAtomLen + 1
		}
		p.pos++
	}
	if p.pos >= len(p.in) || p.in[p.pos] != ':' {
		for p.pos < len(p.in) && isTokenChar(p.in[p.pos]) && p.in[p.pos] != ':' {
			p.pos++
		}
		return append([]byte(nil), p.in[start:p.pos]...), nil
	}
	if tooBig {
		return nil, fmt.Errorf("sexp: atom exceeds %d bytes", MaxAtomLen)
	}
	p.pos++
	if p.pos+n > len(p.in) {
		return nil, ErrTruncated
	}
	out := append([]byte(nil), p.in[p.pos:p.pos+n]...)
	p.pos += n
	return out, nil
}

func (p *parser) parseQuoted() ([]byte, error) {
	p.pos++ // opening quote
	var out []byte
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch c {
		case '"':
			p.pos++
			return out, nil
		case '\\':
			p.pos++
			if p.pos >= len(p.in) {
				return nil, ErrTruncated
			}
			switch e := p.in[p.pos]; e {
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case '"', '\\':
				out = append(out, e)
			default:
				return nil, fmt.Errorf("sexp: bad escape \\%c at byte %d", e, p.pos)
			}
			p.pos++
		default:
			out = append(out, c)
			p.pos++
		}
		if len(out) > MaxAtomLen {
			return nil, fmt.Errorf("sexp: atom exceeds %d bytes", MaxAtomLen)
		}
	}
	return nil, ErrTruncated
}

func (p *parser) parseBase64() ([]byte, error) {
	p.pos++ // opening |
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '|' {
		p.pos++
	}
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	raw := make([]byte, 0, p.pos-start)
	for _, c := range p.in[start:p.pos] {
		if !isSpace(c) {
			raw = append(raw, c)
		}
	}
	p.pos++ // closing |
	dec := make([]byte, base64.StdEncoding.DecodedLen(len(raw)))
	n, err := base64.StdEncoding.Decode(dec, raw)
	if err != nil {
		return nil, fmt.Errorf("sexp: bad base64 atom: %v", err)
	}
	return dec[:n], nil
}

func (p *parser) parseHex() ([]byte, error) {
	p.pos++ // opening #
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '#' {
		p.pos++
	}
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	raw := make([]byte, 0, p.pos-start)
	for _, c := range p.in[start:p.pos] {
		if !isSpace(c) {
			raw = append(raw, c)
		}
	}
	p.pos++ // closing #
	out := make([]byte, hex.DecodedLen(len(raw)))
	if _, err := hex.Decode(out, raw); err != nil {
		return nil, fmt.Errorf("sexp: bad hex atom: %v", err)
	}
	return out, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && isSpace(p.in[p.pos]) {
		p.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}
