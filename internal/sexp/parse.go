package sexp

import (
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Limits protecting the parser against hostile input. Proof objects
// arrive from untrusted parties (paper section 4.3), so the parser is
// a security boundary.
const (
	// MaxAtomLen bounds a single atom.
	MaxAtomLen = 1 << 20
	// MaxDepth bounds list nesting. The parser is iterative (an
	// explicit mark stack, not recursion), so a deeply nested hostile
	// payload is rejected by this limit rather than by stack
	// exhaustion of the daemon that parses it.
	MaxDepth = 128
	// MaxTotal bounds the total encoded input accepted.
	MaxTotal = 8 << 20
)

// ErrTruncated is returned when input ends mid-expression.
var ErrTruncated = errors.New("sexp: truncated input")

// Arena is reusable parser scratch: node slabs the parsed tree lives
// in and a byte slab that decoded atoms (quoted escapes, |base64|,
// #hex#, transport payloads) borrow from. Parsing through a warm
// Arena allocates nothing on the happy path.
//
// Everything an Arena's Parse returns — nodes and atom octets alike —
// is valid only until the next Reset (or the Put that implies it).
// Callers that retain any part of a parse must Copy it first; the
// typed decoders (cert, principal, tag, ...) already copy what they
// keep. An Arena is not safe for concurrent use.
type Arena struct {
	atoms []AtomVal
	lists []ListVal
	elems []Sexp
	stack []Sexp
	marks []int
	buf   []byte
}

// Reset invalidates every expression the Arena has returned and
// reclaims its scratch for the next parse.
func (a *Arena) Reset() {
	a.atoms = a.atoms[:0]
	a.lists = a.lists[:0]
	a.elems = a.elems[:0]
	a.stack = a.stack[:0]
	a.marks = a.marks[:0]
	a.buf = a.buf[:0]
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena borrows a pooled Arena. Pair with PutArena once nothing
// from its parses is referenced anymore.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena resets a and returns it to the pool. Expressions parsed
// through a are invalid afterwards.
func PutArena(a *Arena) {
	a.Reset()
	arenaPool.Put(a)
}

// Parse decodes one S-expression in canonical, transport, or advanced
// form (auto-detected) and returns it along with the number of input
// bytes consumed. The result borrows from in (see the package
// comment on buffer ownership).
func Parse(in []byte) (Sexp, int, error) {
	return new(Arena).Parse(in)
}

// ParseOne is Parse but requires the input to contain exactly one
// expression with nothing but whitespace after it.
func ParseOne(in []byte) (Sexp, error) {
	return new(Arena).ParseOne(in)
}

// Parse decodes one expression from in, borrowing octets from in and
// node storage from the arena. Valid until the arena's next Reset.
func (a *Arena) Parse(in []byte) (Sexp, int, error) {
	if len(in) > MaxTotal {
		return nil, 0, fmt.Errorf("sexp: input exceeds %d bytes", MaxTotal)
	}
	pos := skipSpace(in, 0)
	if pos < len(in) && in[pos] == '{' {
		return a.parseTransport(in, pos)
	}
	s, n, err := a.run(in, pos)
	if err != nil {
		return nil, n, err
	}
	return s, n, nil
}

// ParseOne is Parse but requires exactly one expression with nothing
// but whitespace after it.
func (a *Arena) ParseOne(in []byte) (Sexp, error) {
	s, n, err := a.Parse(in)
	if err != nil {
		return nil, err
	}
	for ; n < len(in); n++ {
		if !isSpace(in[n]) {
			return nil, fmt.Errorf("sexp: trailing garbage at byte %d", n)
		}
	}
	return s, nil
}

// parseTransport decodes a {base64} wrapper into the arena's byte
// slab and parses the canonical payload inside it.
func (a *Arena) parseTransport(in []byte, pos int) (Sexp, int, error) {
	start := pos
	pos++ // '{'
	end := pos
	for end < len(in) && in[end] != '}' {
		end++
	}
	if end >= len(in) {
		return nil, start, ErrTruncated
	}
	rawStart := len(a.buf)
	for _, c := range in[pos:end] {
		if !isSpace(c) {
			a.buf = append(a.buf, c)
		}
	}
	raw := a.buf[rawStart:]
	decStart := len(a.buf)
	a.buf = grow(a.buf, base64.StdEncoding.DecodedLen(len(raw)))
	// grow may relocate the slab; re-slice raw against the new backing.
	raw = a.buf[rawStart:decStart]
	dst := a.buf[decStart : decStart+base64.StdEncoding.DecodedLen(len(raw))]
	n, err := base64.StdEncoding.Decode(dst, raw)
	if err != nil {
		return nil, start, fmt.Errorf("sexp: bad transport base64: %v", err)
	}
	a.buf = a.buf[:decStart+n]
	s, _, err := a.run(a.buf[decStart:decStart+n], 0)
	if err != nil {
		return nil, start, err
	}
	return s, end + 1, nil
}

// run is the iterative parse loop: '(' pushes a mark, ')' pops one
// and moves the children collected since into an elems window, atoms
// land on the stack. Depth is the mark count, bounded by MaxDepth.
func (a *Arena) run(in []byte, pos int) (Sexp, int, error) {
	baseMark := len(a.marks)
	baseStack := len(a.stack)
	fail := func(err error) (Sexp, int, error) {
		a.marks = a.marks[:baseMark]
		a.stack = a.stack[:baseStack]
		return nil, pos, err
	}
	for {
		pos = skipSpace(in, pos)
		if pos >= len(in) {
			return fail(ErrTruncated)
		}
		var node Sexp
		switch c := in[pos]; {
		case c == '(':
			if len(a.marks)-baseMark >= MaxDepth {
				return fail(fmt.Errorf("sexp: nesting exceeds %d", MaxDepth))
			}
			a.marks = append(a.marks, len(a.stack))
			pos++
			continue
		case c == ')':
			if len(a.marks) == baseMark {
				return fail(fmt.Errorf("sexp: unexpected ) at byte %d", pos))
			}
			mark := a.marks[len(a.marks)-1]
			a.marks = a.marks[:len(a.marks)-1]
			start := len(a.elems)
			a.elems = append(a.elems, a.stack[mark:]...)
			a.stack = a.stack[:mark]
			a.lists = append(a.lists, ListVal{elems: a.elems[start:len(a.elems):len(a.elems)]})
			node = &a.lists[len(a.lists)-1]
			pos++
		case c == '[':
			pos++
			hint, np, err := a.atomBody(in, pos)
			if err != nil {
				return fail(err)
			}
			pos = skipSpace(in, np)
			if pos >= len(in) || in[pos] != ']' {
				return fail(fmt.Errorf("sexp: unterminated display hint at byte %d", pos))
			}
			pos = skipSpace(in, pos+1)
			body, np2, err := a.atomBody(in, pos)
			if err != nil {
				return fail(err)
			}
			pos = np2
			a.atoms = append(a.atoms, AtomVal{octets: body, hint: string(hint)})
			node = &a.atoms[len(a.atoms)-1]
		default:
			body, np, err := a.atomBody(in, pos)
			if err != nil {
				return fail(err)
			}
			pos = np
			a.atoms = append(a.atoms, AtomVal{octets: body})
			node = &a.atoms[len(a.atoms)-1]
		}
		if len(a.marks) == baseMark {
			return node, pos, nil
		}
		a.stack = append(a.stack, node)
	}
}

// atomBody parses one atom at pos, handling verbatim (canonical),
// token, quoted-string, |base64| and #hex# forms. Verbatim octets and
// escape-free tokens/strings borrow from in; decoded forms borrow
// from the arena's byte slab.
func (a *Arena) atomBody(in []byte, pos int) ([]byte, int, error) {
	if pos >= len(in) {
		return nil, pos, ErrTruncated
	}
	c := in[pos]
	switch {
	case c >= '0' && c <= '9':
		return a.parseVerbatim(in, pos)
	case c == '"':
		return a.parseQuoted(in, pos)
	case c == '|':
		return a.parseBase64(in, pos)
	case c == '#':
		return a.parseHex(in, pos)
	case isTokenChar(c):
		start := pos
		for pos < len(in) && isTokenChar(in[pos]) {
			pos++
		}
		return in[start:pos], pos, nil
	default:
		return nil, pos, fmt.Errorf("sexp: unexpected byte %q at %d", c, pos)
	}
}

// parseVerbatim parses "<len>:<octets>". When the digits are not
// followed by ':', they begin a bare token instead (numbers such as
// "10" inside range tags); canonical encodings always carry the
// colon, so the forms stay unambiguous.
func (a *Arena) parseVerbatim(in []byte, pos int) ([]byte, int, error) {
	start := pos
	n := 0
	tooBig := false
	for pos < len(in) && in[pos] >= '0' && in[pos] <= '9' {
		n = n*10 + int(in[pos]-'0')
		if n > MaxAtomLen {
			tooBig = true
			n = MaxAtomLen + 1
		}
		pos++
	}
	if pos >= len(in) || in[pos] != ':' {
		for pos < len(in) && isTokenChar(in[pos]) && in[pos] != ':' {
			pos++
		}
		return in[start:pos], pos, nil
	}
	if tooBig {
		return nil, pos, fmt.Errorf("sexp: atom exceeds %d bytes", MaxAtomLen)
	}
	pos++
	if pos+n > len(in) {
		return nil, pos, ErrTruncated
	}
	return in[pos : pos+n], pos + n, nil
}

func (a *Arena) parseQuoted(in []byte, pos int) ([]byte, int, error) {
	pos++ // opening quote
	// Fast path: no escapes before the closing quote borrows from in.
	scan := pos
	for scan < len(in) && in[scan] != '"' && in[scan] != '\\' {
		scan++
	}
	if scan >= len(in) {
		return nil, scan, ErrTruncated
	}
	if in[scan] == '"' {
		if scan-pos > MaxAtomLen {
			return nil, scan, fmt.Errorf("sexp: atom exceeds %d bytes", MaxAtomLen)
		}
		return in[pos:scan], scan + 1, nil
	}
	// Escapes present: decode into the arena slab.
	start := len(a.buf)
	for pos < len(in) {
		c := in[pos]
		switch c {
		case '"':
			pos++
			return a.buf[start:len(a.buf):len(a.buf)], pos, nil
		case '\\':
			pos++
			if pos >= len(in) {
				return nil, pos, ErrTruncated
			}
			switch e := in[pos]; e {
			case 'n':
				a.buf = append(a.buf, '\n')
			case 'r':
				a.buf = append(a.buf, '\r')
			case 't':
				a.buf = append(a.buf, '\t')
			case '"', '\\':
				a.buf = append(a.buf, e)
			default:
				return nil, pos, fmt.Errorf("sexp: bad escape \\%c at byte %d", e, pos)
			}
			pos++
		default:
			a.buf = append(a.buf, c)
			pos++
		}
		if len(a.buf)-start > MaxAtomLen {
			return nil, pos, fmt.Errorf("sexp: atom exceeds %d bytes", MaxAtomLen)
		}
	}
	return nil, pos, ErrTruncated
}

func (a *Arena) parseBase64(in []byte, pos int) ([]byte, int, error) {
	pos++ // opening |
	start := pos
	for pos < len(in) && in[pos] != '|' {
		pos++
	}
	if pos >= len(in) {
		return nil, pos, ErrTruncated
	}
	rawStart := len(a.buf)
	for _, c := range in[start:pos] {
		if !isSpace(c) {
			a.buf = append(a.buf, c)
		}
	}
	pos++ // closing |
	rawLen := len(a.buf) - rawStart
	decStart := len(a.buf)
	a.buf = grow(a.buf, base64.StdEncoding.DecodedLen(rawLen))
	raw := a.buf[rawStart:decStart]
	dst := a.buf[decStart : decStart+base64.StdEncoding.DecodedLen(rawLen)]
	n, err := base64.StdEncoding.Decode(dst, raw)
	if err != nil {
		return nil, pos, fmt.Errorf("sexp: bad base64 atom: %v", err)
	}
	a.buf = a.buf[:decStart+n]
	return a.buf[decStart : decStart+n : decStart+n], pos, nil
}

func (a *Arena) parseHex(in []byte, pos int) ([]byte, int, error) {
	pos++ // opening #
	start := pos
	for pos < len(in) && in[pos] != '#' {
		pos++
	}
	if pos >= len(in) {
		return nil, pos, ErrTruncated
	}
	rawStart := len(a.buf)
	for _, c := range in[start:pos] {
		if !isSpace(c) {
			a.buf = append(a.buf, c)
		}
	}
	pos++ // closing #
	rawLen := len(a.buf) - rawStart
	decStart := len(a.buf)
	a.buf = grow(a.buf, hex.DecodedLen(rawLen))
	raw := a.buf[rawStart:decStart]
	dst := a.buf[decStart : decStart+hex.DecodedLen(rawLen)]
	if _, err := hex.Decode(dst, raw); err != nil {
		return nil, pos, fmt.Errorf("sexp: bad hex atom: %v", err)
	}
	a.buf = a.buf[:decStart+hex.DecodedLen(rawLen)]
	return dst[:len(dst):len(dst)], pos, nil
}

// grow extends b's capacity by at least n without changing its
// length, relocating at most once.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) < n {
		nb := make([]byte, len(b), 2*cap(b)+n)
		copy(nb, b)
		return nb
	}
	return b
}

func skipSpace(in []byte, pos int) int {
	for pos < len(in) && isSpace(in[pos]) {
		pos++
	}
	return pos
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}
