package sexp

import (
	"encoding/base64"
	"fmt"
	"sync"
)

// Encoding is append-based: every node knows how to append its
// canonical and advanced forms onto a caller's buffer, Canonical()
// allocates exactly once at the size FormatLen precomputes, and hot
// paths (framing, hashing, signing) borrow pooled buffers so a warm
// encode allocates nothing.

// AppendCanonical appends the canonical encoding of s to dst and
// returns the extended slice; useful for building signing buffers and
// frames without intermediate allocation.
func AppendCanonical(dst []byte, s Sexp) []byte {
	if s == nil {
		return dst
	}
	return s.appendCanonical(dst)
}

// bufPool recycles encode scratch. Buffers are stored via pointer so
// Put does not allocate a slice header box.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

func getBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

func putBuf(b []byte) {
	if cap(b) > MaxTotal {
		return // don't park pathological buffers in the pool
	}
	bufPool.Put(&b)
}

// GetBuf borrows a pooled byte buffer (length 0) for append-based
// encoding; pair with PutBuf on the final slice once its contents
// have been consumed.
func GetBuf() []byte { return getBuf() }

// PutBuf returns an encode buffer (or any append-grown descendant of
// one) to the pool.
func PutBuf(b []byte) { putBuf(b) }

// transportOf builds the transport encoding: the canonical form,
// base64-encoded and wrapped in braces. Transport form survives
// transfer through protocols that mangle binary data (HTTP headers,
// mail, cut-and-paste), per section 2.4 of the paper.
func transportOf(s Sexp) []byte {
	can := getBuf()
	can = s.appendCanonical(can)
	out := make([]byte, base64.StdEncoding.EncodedLen(len(can))+2)
	out[0] = '{'
	base64.StdEncoding.Encode(out[1:], can)
	out[len(out)-1] = '}'
	putBuf(can)
	return out
}

// appendAdvancedAtom appends one atom body in advanced form: token
// atoms bare, printable atoms quoted, binary atoms |base64|.
func appendAdvancedAtom(dst, b []byte) []byte {
	switch {
	case isToken(b):
		return append(dst, b...)
	case isQuotable(b):
		dst = append(dst, '"')
		for _, c := range b {
			switch c {
			case '"', '\\':
				dst = append(dst, '\\', c)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, c)
			}
		}
		return append(dst, '"')
	default:
		dst = append(dst, '|')
		dst = base64.StdEncoding.AppendEncode(dst, b)
		return append(dst, '|')
	}
}

// isToken reports whether b may be written as a bare token: nonempty,
// starts with a non-digit token char, contains only token chars.
func isToken(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	if b[0] >= '0' && b[0] <= '9' {
		return false
	}
	for _, c := range b {
		if !isTokenChar(c) {
			return false
		}
	}
	return true
}

func isTokenChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	switch c {
	case '-', '.', '/', '_', ':', '*', '+', '=':
		return true
	}
	return false
}

func isQuotable(b []byte) bool {
	for _, c := range b {
		if c < 0x20 && c != '\n' && c != '\r' && c != '\t' {
			return false
		}
		if c >= 0x7f {
			return false
		}
	}
	return true
}

// validateLen reports when FormatLen disagrees with the materialized
// canonical length; the tests run every shape through it.
func validateLen(s Sexp) error {
	if got, want := len(s.Canonical()), s.FormatLen(); got != want {
		return fmt.Errorf("sexp: FormatLen mismatch got %d want %d", want, got)
	}
	return nil
}
