package sexp

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"strconv"
)

// Canonical returns the canonical encoding of s: atoms as
// "[hint]<len>:<octets>" verbatim strings, lists parenthesized. The
// canonical form is the input to hashing and signing.
func (s *Sexp) Canonical() []byte {
	var buf bytes.Buffer
	s.canonicalTo(&buf)
	return buf.Bytes()
}

func (s *Sexp) canonicalTo(buf *bytes.Buffer) {
	if s == nil {
		return
	}
	if !s.IsList {
		if s.Hint != "" {
			buf.WriteByte('[')
			writeVerbatim(buf, []byte(s.Hint))
			buf.WriteByte(']')
		}
		writeVerbatim(buf, s.Octets)
		return
	}
	buf.WriteByte('(')
	for _, c := range s.List {
		c.canonicalTo(buf)
	}
	buf.WriteByte(')')
}

func writeVerbatim(buf *bytes.Buffer, b []byte) {
	buf.WriteString(strconv.Itoa(len(b)))
	buf.WriteByte(':')
	buf.Write(b)
}

// Transport returns the transport encoding: the canonical form,
// base64-encoded and wrapped in braces. Transport form survives
// transfer through protocols that mangle binary data (HTTP headers,
// mail, cut-and-paste), per section 2.4 of the paper.
func (s *Sexp) Transport() []byte {
	can := s.Canonical()
	out := make([]byte, base64.StdEncoding.EncodedLen(len(can))+2)
	out[0] = '{'
	base64.StdEncoding.Encode(out[1:], can)
	out[len(out)-1] = '}'
	return out
}

// Advanced returns the human-readable advanced encoding: token atoms
// bare, printable atoms quoted, binary atoms |base64|.
func (s *Sexp) Advanced() []byte {
	var buf bytes.Buffer
	s.advancedTo(&buf)
	return buf.Bytes()
}

func (s *Sexp) advancedTo(buf *bytes.Buffer) {
	if s == nil {
		return
	}
	if !s.IsList {
		if s.Hint != "" {
			buf.WriteByte('[')
			writeAdvancedAtom(buf, []byte(s.Hint))
			buf.WriteByte(']')
		}
		writeAdvancedAtom(buf, s.Octets)
		return
	}
	buf.WriteByte('(')
	for i, c := range s.List {
		if i > 0 {
			buf.WriteByte(' ')
		}
		c.advancedTo(buf)
	}
	buf.WriteByte(')')
}

func writeAdvancedAtom(buf *bytes.Buffer, b []byte) {
	switch {
	case isToken(b):
		buf.Write(b)
	case isQuotable(b):
		buf.WriteByte('"')
		for _, c := range b {
			switch c {
			case '"', '\\':
				buf.WriteByte('\\')
				buf.WriteByte(c)
			case '\n':
				buf.WriteString(`\n`)
			case '\r':
				buf.WriteString(`\r`)
			case '\t':
				buf.WriteString(`\t`)
			default:
				buf.WriteByte(c)
			}
		}
		buf.WriteByte('"')
	default:
		buf.WriteByte('|')
		buf.WriteString(base64.StdEncoding.EncodeToString(b))
		buf.WriteByte('|')
	}
}

// isToken reports whether b may be written as a bare token: nonempty,
// starts with a non-digit token char, contains only token chars.
func isToken(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	if b[0] >= '0' && b[0] <= '9' {
		return false
	}
	for _, c := range b {
		if !isTokenChar(c) {
			return false
		}
	}
	return true
}

func isTokenChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	switch c {
	case '-', '.', '/', '_', ':', '*', '+', '=':
		return true
	}
	return false
}

func isQuotable(b []byte) bool {
	for _, c := range b {
		if c < 0x20 && c != '\n' && c != '\r' && c != '\t' {
			return false
		}
		if c >= 0x7f {
			return false
		}
	}
	return true
}

// AppendCanonical appends the canonical encoding of s to dst and
// returns the extended slice; useful for building signing buffers
// without intermediate allocation.
func AppendCanonical(dst []byte, s *Sexp) []byte {
	var buf bytes.Buffer
	buf.Write(dst)
	s.canonicalTo(&buf)
	return buf.Bytes()
}

// FormatLen returns the canonical encoding length without materializing
// the encoding.
func (s *Sexp) FormatLen() int {
	if s == nil {
		return 0
	}
	if !s.IsList {
		n := verbatimLen(len(s.Octets))
		if s.Hint != "" {
			n += 2 + verbatimLen(len(s.Hint))
		}
		return n
	}
	n := 2
	for _, c := range s.List {
		n += c.FormatLen()
	}
	return n
}

func verbatimLen(n int) int {
	return len(strconv.Itoa(n)) + 1 + n
}

// mustFit panics when FormatLen disagrees with the materialized
// canonical length; used only under testing builds via ValidateLen.
func (s *Sexp) validateLen() error {
	if got, want := len(s.Canonical()), s.FormatLen(); got != want {
		return fmt.Errorf("sexp: FormatLen mismatch got %d want %d", want, got)
	}
	return nil
}
