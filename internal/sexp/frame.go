package sexp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing for append-only logs. A frame is one S-expression
// wrapped in a fixed header so a reader can stream records back out of
// a byte-oriented log and detect exactly where a crash tore the tail:
//
//	4 bytes  big-endian payload length
//	4 bytes  IEEE CRC32 of the payload
//	n bytes  payload (canonical encoding of the expression)
//
// The CRC covers only the payload; a corrupted or half-written length
// shows up as a truncated or oversized frame instead. Readers treat
// anything after the first bad frame as lost (the write that produced
// it never completed), which is the contract certdir's write-ahead log
// relies on.

// FrameHeaderLen is the fixed per-record framing overhead.
const FrameHeaderLen = 8

// ErrFrameCorrupt marks a frame that is present but unusable: a torn
// header, a payload shorter than its declared length, a CRC mismatch,
// or a payload that does not parse as one canonical S-expression.
// io.EOF, by contrast, is returned only at a clean frame boundary.
var ErrFrameCorrupt = errors.New("sexp: corrupt frame")

// AppendFrame appends the framed canonical encoding of e to dst and
// returns the extended slice. The payload is encoded in place after a
// reserved header, so a warm append with spare capacity allocates
// nothing.
func AppendFrame(dst []byte, e Sexp) []byte {
	start := len(dst)
	var hdr [FrameHeaderLen]byte
	dst = append(dst, hdr[:]...)
	dst = e.appendCanonical(dst)
	payload := dst[start+FrameHeaderLen:]
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(payload))
	return dst
}

// ReadFrame reads one framed expression from r, returning it with the
// total number of bytes consumed. At a clean end of input it returns
// io.EOF with n == 0; a frame that starts but cannot be completed and
// validated returns an error wrapping ErrFrameCorrupt, and the reader
// must discard everything from the frame's first byte on.
//
// The returned expression owns its memory. Bulk readers that only need
// each record transiently should prefer FrameReader, which recycles
// the payload buffer and parse arena between records.
func ReadFrame(r io.Reader) (e Sexp, n int, err error) {
	var fr FrameReader
	return fr.read(r, false)
}

// FrameReader streams frames with a reusable payload buffer and parse
// arena: a replay loop reading millions of records does a handful of
// allocations total instead of a handful per record.
//
// The expression returned by Next borrows both the reader's payload
// buffer and its arena, so it is valid only until the next call to
// Next; callers that retain a record past that point must Copy() it
// (the typed decoders in cert/core already copy everything they keep).
type FrameReader struct {
	payload []byte
	arena   Arena
}

// Next reads one frame from r with the same contract as ReadFrame,
// except that the returned expression is only valid until the
// following call to Next.
func (fr *FrameReader) Next(r io.Reader) (e Sexp, n int, err error) {
	return fr.read(r, true)
}

func (fr *FrameReader) read(r io.Reader, reuse bool) (e Sexp, n int, err error) {
	var hdr [FrameHeaderLen]byte
	hn, err := io.ReadFull(r, hdr[:])
	if err == io.EOF {
		return nil, 0, io.EOF
	}
	if err != nil {
		return nil, hn, fmt.Errorf("%w: torn header (%d of %d bytes)", ErrFrameCorrupt, hn, FrameHeaderLen)
	}
	size := binary.BigEndian.Uint32(hdr[0:4])
	if size > MaxTotal {
		return nil, hn, fmt.Errorf("%w: payload length %d exceeds %d", ErrFrameCorrupt, size, MaxTotal)
	}
	var payload []byte
	if reuse {
		if cap(fr.payload) < int(size) {
			fr.payload = make([]byte, size)
		}
		payload = fr.payload[:size]
	} else {
		payload = make([]byte, size)
	}
	pn, err := io.ReadFull(r, payload)
	if err != nil {
		return nil, hn + pn, fmt.Errorf("%w: torn payload (%d of %d bytes)", ErrFrameCorrupt, pn, size)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[4:8]); got != want {
		return nil, hn + pn, fmt.Errorf("%w: CRC mismatch (%08x != %08x)", ErrFrameCorrupt, got, want)
	}
	if reuse {
		fr.arena.Reset()
		e, err = fr.arena.ParseOne(payload)
	} else {
		e, err = ParseOne(payload)
	}
	if err != nil {
		return nil, hn + pn, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
	}
	return e, hn + pn, nil
}
