// Package sexp implements SPKI S-expressions as specified in Rivest's
// S-expression Internet draft, the wire language of the Snowflake
// authorization system (Howell & Kotz, OSDI 2000, section 2.4).
//
// An S-expression is either an octet-string atom or a list of
// S-expressions. Three encodings are supported:
//
//   - canonical: unambiguous, used for hashing and signing
//     ("(3:abc(1:x))" style verbatim length-prefixed atoms);
//   - transport: base64 of the canonical form wrapped in braces;
//   - advanced: human-readable tokens, quoted strings, |base64| and
//     #hex# atoms, used in examples and debugging output.
//
// Atoms may carry a display hint ("[text/plain]3:abc"), preserved by
// all encoders.
//
// # Representation
//
// Sexp is a small interface over three concrete node types: *AtomVal
// (an octet-string atom), *ListVal (a list of children), and *RawVal
// (a pre-encoded canonical span that re-encodes by memcpy). The
// implementations are sealed to this package, so every node obeys the
// encoding invariants.
//
// # Buffer ownership
//
// The parser borrows from its input: atom octets returned by Bytes()
// are spans of the buffer given to Parse/ParseOne (or of an Arena's
// scratch). A parsed expression is therefore valid only as long as
// the input buffer is, and only until an owning Arena is reset.
// Callers that retain octets beyond that window must copy them —
// Copy() returns a deep copy with owned storage, and Text()/Key()
// copy inherently. The constructors (Atom, String, List, ...) always
// build owned nodes.
package sexp

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"unsafe"
)

// Sexp is a single S-expression node: an atom holding octets, or a
// list of children. Implementations are sealed to this package; the
// zero of usefulness is the nil interface, which Nth/Child/Path
// return for missing nodes.
type Sexp interface {
	// IsAtom reports whether the node is an atom.
	IsAtom() bool
	// IsList reports whether the node is a list.
	IsList() bool
	// Len returns the number of children of a list, or 0 for an atom.
	Len() int
	// Nth returns the i'th child of a list, or nil when out of range
	// or when the node is an atom.
	Nth(i int) Sexp
	// Bytes returns the atom octets (nil for lists). The slice may
	// borrow from a parse input buffer; see the package comment.
	Bytes() []byte
	// Hint returns the optional display hint of an atom ("" when
	// absent, and always "" for lists).
	Hint() string
	// Tag returns the octets of the first child when it is an atom,
	// which by SPKI convention names the type of a list expression
	// ("cert", "tag", "public-key", ...). It returns "" for atoms,
	// empty lists, and lists whose first element is itself a list.
	Tag() string
	// Text returns the atom octets as a string ("" for lists).
	Text() string
	// Copy returns a deep copy with owned storage, safe to retain
	// after the original's backing buffer or arena is gone.
	Copy() Sexp
	// Hash returns the SHA-256 hash of the canonical encoding. Two
	// expressions hash equal exactly when Equal reports true.
	Hash() [32]byte
	// Key returns the canonical encoding as a string, suitable for
	// use as a map key.
	Key() string
	// Canonical returns the canonical encoding, the input to hashing
	// and signing. The result is freshly allocated at exact size.
	Canonical() []byte
	// Transport returns the canonical form base64-encoded and wrapped
	// in braces.
	Transport() []byte
	// Advanced returns the human-readable advanced encoding.
	Advanced() []byte
	// FormatLen returns the canonical encoding length without
	// materializing the encoding.
	FormatLen() int
	// SortChildren sorts the children of a list (after the leading
	// type atom, if any) by canonical encoding; no-op on atoms. It is
	// used to canonicalize set-valued expressions.
	SortChildren()
	// Path walks a list expression by type tags:
	// Path("cert","issuer") returns the first child list tagged
	// "issuer" of the first child list tagged "cert", or nil when any
	// step is missing.
	Path(tags ...string) Sexp
	// Child returns the first child list tagged tag, or nil.
	Child(tag string) Sexp
	// MustText returns the atom text of the i'th child or an error
	// naming what was expected; a convenience for decoding
	// fixed-shape lists.
	MustText(i int, what string) (string, error)
	// String renders the expression in advanced form for debugging.
	String() string

	// appendCanonical appends the canonical encoding to dst. Sealed:
	// only in-package implementations exist, so AppendFrame and the
	// encoders can trust it.
	appendCanonical(dst []byte) []byte
	// appendAdvanced appends the advanced encoding to dst.
	appendAdvanced(dst []byte) []byte
}

// AtomVal is an octet-string atom, optionally display-hinted. Octets
// may borrow from a parse input buffer (see the package comment);
// constructor-built atoms own their storage.
type AtomVal struct {
	octets []byte
	hint   string
}

// ListVal is a parenthesized list of children.
type ListVal struct {
	elems []Sexp
}

// RawVal wraps a pre-encoded canonical byte span: encoding is a
// memcpy, and hashing reads the span directly. Structural accessors
// (Len, Nth, Tag, ...) parse the span on demand, so RawVal is for
// encode-heavy paths (serving stored certificates, framing), not for
// introspection loops.
type RawVal struct {
	canon []byte
}

// Atom returns a new atom node holding a copy of the given octets.
func Atom(b []byte) Sexp {
	return &AtomVal{octets: append([]byte(nil), b...)}
}

// String returns a new atom node holding the octets of s.
func String(s string) Sexp {
	return &AtomVal{octets: []byte(s)}
}

// HintedAtom returns an atom with a display hint attached.
func HintedAtom(hint string, b []byte) Sexp {
	return &AtomVal{octets: append([]byte(nil), b...), hint: hint}
}

// List returns a new list node with the given children. The children
// are not copied; callers must not mutate them afterwards.
func List(children ...Sexp) Sexp {
	if children == nil {
		children = []Sexp{}
	}
	return &ListVal{elems: children}
}

// Raw wraps canonical bytes produced by this package's encoders as an
// expression that re-encodes by memcpy. The bytes are not copied and
// must not change afterwards; they must be exactly one canonical
// encoding (Raw does not validate — structural accessors surface
// garbage as an empty atom).
func Raw(canonical []byte) Sexp {
	return &RawVal{canon: canonical}
}

// --- AtomVal ------------------------------------------------------------

func (a *AtomVal) IsAtom() bool  { return true }
func (a *AtomVal) IsList() bool  { return false }
func (a *AtomVal) Len() int      { return 0 }
func (a *AtomVal) Nth(int) Sexp  { return nil }
func (a *AtomVal) Bytes() []byte { return a.octets }
func (a *AtomVal) Hint() string  { return a.hint }
func (a *AtomVal) Tag() string   { return "" }
func (a *AtomVal) Text() string  { return string(a.octets) }

func (a *AtomVal) Copy() Sexp {
	return &AtomVal{octets: append([]byte(nil), a.octets...), hint: a.hint}
}

func (a *AtomVal) FormatLen() int {
	n := verbatimLen(len(a.octets))
	if a.hint != "" {
		n += 2 + verbatimLen(len(a.hint))
	}
	return n
}

func (a *AtomVal) appendCanonical(dst []byte) []byte {
	if a.hint != "" {
		dst = append(dst, '[')
		dst = appendVerbatim(dst, []byte(a.hint))
		dst = append(dst, ']')
	}
	return appendVerbatim(dst, a.octets)
}

func (a *AtomVal) appendAdvanced(dst []byte) []byte {
	if a.hint != "" {
		dst = append(dst, '[')
		dst = appendAdvancedAtom(dst, []byte(a.hint))
		dst = append(dst, ']')
	}
	return appendAdvancedAtom(dst, a.octets)
}

func (a *AtomVal) SortChildren() {}

func (a *AtomVal) Path(tags ...string) Sexp { return pathOf(a, tags) }
func (a *AtomVal) Child(tag string) Sexp    { return pathOf(a, []string{tag}) }

func (a *AtomVal) MustText(i int, what string) (string, error) { return mustText(a, i, what) }

func (a *AtomVal) Canonical() []byte { return canonicalOf(a) }
func (a *AtomVal) Transport() []byte { return transportOf(a) }
func (a *AtomVal) Advanced() []byte  { return a.appendAdvanced(nil) }
func (a *AtomVal) Hash() [32]byte    { return hashOf(a) }
func (a *AtomVal) Key() string       { return string(canonicalOf(a)) }
func (a *AtomVal) String() string    { return string(a.Advanced()) }

// --- ListVal ------------------------------------------------------------

func (l *ListVal) IsAtom() bool  { return false }
func (l *ListVal) IsList() bool  { return true }
func (l *ListVal) Len() int      { return len(l.elems) }
func (l *ListVal) Bytes() []byte { return nil }
func (l *ListVal) Hint() string  { return "" }
func (l *ListVal) Text() string  { return "" }

func (l *ListVal) Nth(i int) Sexp {
	if i < 0 || i >= len(l.elems) {
		return nil
	}
	return l.elems[i]
}

func (l *ListVal) Tag() string {
	if len(l.elems) == 0 {
		return ""
	}
	if first, ok := l.elems[0].(*AtomVal); ok {
		return viewString(first.octets)
	}
	return ""
}

func (l *ListVal) Copy() Sexp {
	nodes, octets := 0, 0
	countNodes(l, &nodes, &octets)
	c := &compactCopier{
		atoms:  make([]AtomVal, 0, nodes),
		lists:  make([]ListVal, 0, nodes),
		elems:  make([]Sexp, 0, nodes),
		octets: make([]byte, 0, octets),
	}
	return c.copy(l)
}

func (l *ListVal) FormatLen() int {
	n := 2
	for _, c := range l.elems {
		n += c.FormatLen()
	}
	return n
}

func (l *ListVal) appendCanonical(dst []byte) []byte {
	dst = append(dst, '(')
	for _, c := range l.elems {
		dst = c.appendCanonical(dst)
	}
	return append(dst, ')')
}

func (l *ListVal) appendAdvanced(dst []byte) []byte {
	dst = append(dst, '(')
	for i, c := range l.elems {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = c.appendAdvanced(dst)
	}
	return append(dst, ')')
}

func (l *ListVal) SortChildren() {
	if len(l.elems) < 2 {
		return
	}
	start := 0
	if l.elems[0].IsAtom() {
		start = 1
	}
	rest := l.elems[start:]
	sort.Slice(rest, func(i, j int) bool {
		return bytes.Compare(rest[i].Canonical(), rest[j].Canonical()) < 0
	})
}

func (l *ListVal) Path(tags ...string) Sexp { return pathOf(l, tags) }
func (l *ListVal) Child(tag string) Sexp    { return pathOf(l, []string{tag}) }

func (l *ListVal) MustText(i int, what string) (string, error) { return mustText(l, i, what) }

func (l *ListVal) Canonical() []byte { return canonicalOf(l) }
func (l *ListVal) Transport() []byte { return transportOf(l) }
func (l *ListVal) Advanced() []byte  { return l.appendAdvanced(nil) }
func (l *ListVal) Hash() [32]byte    { return hashOf(l) }
func (l *ListVal) Key() string       { return string(canonicalOf(l)) }
func (l *ListVal) String() string    { return string(l.Advanced()) }

// --- RawVal -------------------------------------------------------------

// load parses the span for structural access. Raw spans come from our
// own encoders, so a parse failure means a caller broke the Raw
// contract; the empty atom keeps accessors total rather than panicking.
func (r *RawVal) load() Sexp {
	s, err := ParseOne(r.canon)
	if err != nil {
		return &AtomVal{}
	}
	return s
}

func (r *RawVal) IsAtom() bool { return len(r.canon) == 0 || r.canon[0] != '(' }
func (r *RawVal) IsList() bool { return !r.IsAtom() }

func (r *RawVal) Len() int       { return r.load().Len() }
func (r *RawVal) Nth(i int) Sexp { return r.load().Nth(i) }
func (r *RawVal) Bytes() []byte  { return r.load().Bytes() }
func (r *RawVal) Hint() string   { return r.load().Hint() }
func (r *RawVal) Tag() string    { return r.load().Tag() }
func (r *RawVal) Text() string   { return r.load().Text() }

func (r *RawVal) Copy() Sexp {
	return &RawVal{canon: append([]byte(nil), r.canon...)}
}

func (r *RawVal) FormatLen() int { return len(r.canon) }

func (r *RawVal) appendCanonical(dst []byte) []byte { return append(dst, r.canon...) }
func (r *RawVal) appendAdvanced(dst []byte) []byte  { return r.load().appendAdvanced(dst) }

func (r *RawVal) SortChildren() {}

func (r *RawVal) Path(tags ...string) Sexp { return r.load().Path(tags...) }
func (r *RawVal) Child(tag string) Sexp    { return r.load().Child(tag) }

func (r *RawVal) MustText(i int, what string) (string, error) { return r.load().MustText(i, what) }

func (r *RawVal) Canonical() []byte { return append([]byte(nil), r.canon...) }
func (r *RawVal) Transport() []byte { return transportOf(r) }
func (r *RawVal) Advanced() []byte  { return r.appendAdvanced(nil) }
func (r *RawVal) Hash() [32]byte    { return sha256.Sum256(r.canon) }
func (r *RawVal) Key() string       { return string(r.canon) }
func (r *RawVal) String() string    { return string(r.Advanced()) }

// --- shared helpers -----------------------------------------------------

// viewString returns a string view over b without copying. Tag() uses
// it: tag strings are compared and discarded, never retained, so the
// view shares the atom's backing buffer. Retaining one past the
// expression's lifetime would dangle — which is why Text(), the
// retention-safe accessor, still copies.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

func appendVerbatim(dst, b []byte) []byte {
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, ':')
	return append(dst, b...)
}

func verbatimLen(n int) int {
	return len(strconv.Itoa(n)) + 1 + n
}

func canonicalOf(s Sexp) []byte {
	return s.appendCanonical(make([]byte, 0, s.FormatLen()))
}

func hashOf(s Sexp) [32]byte {
	buf := getBuf()
	b := s.appendCanonical(buf)
	h := sha256.Sum256(b)
	putBuf(b)
	return h
}

func pathOf(s Sexp, tags []string) Sexp {
	cur := s
	for _, t := range tags {
		if cur == nil || !cur.IsList() {
			return nil
		}
		var next Sexp
		for i, n := 0, cur.Len(); i < n; i++ {
			if c := cur.Nth(i); c.IsList() && c.Tag() == t {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

func mustText(s Sexp, i int, what string) (string, error) {
	c := s.Nth(i)
	if c == nil || c.IsList() {
		return "", fmt.Errorf("sexp: expected %s atom at position %d of %s", what, i, s.Tag())
	}
	return c.Text(), nil
}

// Equal reports whether two expressions are structurally identical,
// including display hints. Either argument may be nil; two nils are
// equal.
func Equal(a, b Sexp) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ar, aRaw := a.(*RawVal)
	br, bRaw := b.(*RawVal)
	switch {
	case aRaw && bRaw:
		return bytes.Equal(ar.canon, br.canon)
	case aRaw:
		return equalRaw(ar, b)
	case bRaw:
		return equalRaw(br, a)
	}
	if a.IsAtom() != b.IsAtom() {
		return false
	}
	if a.IsAtom() {
		return a.Hint() == b.Hint() && bytes.Equal(a.Bytes(), b.Bytes())
	}
	n := a.Len()
	if n != b.Len() {
		return false
	}
	for i := 0; i < n; i++ {
		if !Equal(a.Nth(i), b.Nth(i)) {
			return false
		}
	}
	return true
}

// equalRaw compares a raw span against any node via canonical bytes
// (the canonical form is injective, so byte equality is structural
// equality).
func equalRaw(r *RawVal, other Sexp) bool {
	if other.FormatLen() != len(r.canon) {
		return false
	}
	buf := getBuf()
	b := other.appendCanonical(buf)
	eq := bytes.Equal(r.canon, b)
	putBuf(b)
	return eq
}

// countNodes tallies the nodes and atom-octet bytes of a subtree for
// Copy's exact-size arena.
func countNodes(s Sexp, nodes, octets *int) {
	*nodes++
	switch v := s.(type) {
	case *AtomVal:
		*octets += len(v.octets)
	case *ListVal:
		for _, c := range v.elems {
			countNodes(c, nodes, octets)
		}
	case *RawVal:
		*octets += len(v.canon)
	}
}

// compactCopier deep-copies a tree into a handful of exact-size slabs
// so Copy costs O(4) allocations instead of O(nodes). Slabs are
// pre-sized by countNodes, so appends never relocate and node
// pointers stay valid.
type compactCopier struct {
	atoms  []AtomVal
	lists  []ListVal
	elems  []Sexp
	octets []byte
	stack  []Sexp
}

func (c *compactCopier) copy(s Sexp) Sexp {
	switch v := s.(type) {
	case *AtomVal:
		start := len(c.octets)
		c.octets = append(c.octets, v.octets...)
		c.atoms = append(c.atoms, AtomVal{octets: c.octets[start:len(c.octets):len(c.octets)], hint: v.hint})
		return &c.atoms[len(c.atoms)-1]
	case *ListVal:
		mark := len(c.stack)
		for _, e := range v.elems {
			c.stack = append(c.stack, c.copy(e))
		}
		start := len(c.elems)
		c.elems = append(c.elems, c.stack[mark:]...)
		c.stack = c.stack[:mark]
		c.lists = append(c.lists, ListVal{elems: c.elems[start:len(c.elems):len(c.elems)]})
		return &c.lists[len(c.lists)-1]
	case *RawVal:
		start := len(c.octets)
		c.octets = append(c.octets, v.canon...)
		return &RawVal{canon: c.octets[start:len(c.octets):len(c.octets)]}
	}
	return nil
}
