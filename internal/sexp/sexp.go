// Package sexp implements SPKI S-expressions as specified in Rivest's
// S-expression Internet draft, the wire language of the Snowflake
// authorization system (Howell & Kotz, OSDI 2000, section 2.4).
//
// An S-expression is either an octet-string atom or a list of
// S-expressions. Three encodings are supported:
//
//   - canonical: unambiguous, used for hashing and signing
//     ("(3:abc(1:x))" style verbatim length-prefixed atoms);
//   - transport: base64 of the canonical form wrapped in braces;
//   - advanced: human-readable tokens, quoted strings, |base64| and
//     #hex# atoms, used in examples and debugging output.
//
// Atoms may carry a display hint ("[text/plain]3:abc"), preserved by
// all encoders.
package sexp

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
)

// Sexp is a single S-expression node: an atom (IsList false) holding
// octets, or a list (IsList true) of children. The zero value is the
// empty atom.
type Sexp struct {
	// IsList distinguishes lists from atoms.
	IsList bool
	// Octets is the atom content; meaningful only when !IsList.
	Octets []byte
	// Hint is the optional display hint of an atom (may be empty).
	Hint string
	// List holds the children of a list; meaningful only when IsList.
	List []*Sexp
}

// Atom returns a new atom node holding the given octets.
func Atom(b []byte) *Sexp {
	return &Sexp{Octets: append([]byte(nil), b...)}
}

// String returns a new atom node holding the octets of s.
func String(s string) *Sexp {
	return &Sexp{Octets: []byte(s)}
}

// HintedAtom returns an atom with a display hint attached.
func HintedAtom(hint string, b []byte) *Sexp {
	return &Sexp{Octets: append([]byte(nil), b...), Hint: hint}
}

// List returns a new list node with the given children. The children
// are not copied; callers must not mutate them afterwards.
func List(children ...*Sexp) *Sexp {
	if children == nil {
		children = []*Sexp{}
	}
	return &Sexp{IsList: true, List: children}
}

// IsAtom reports whether s is an atom node.
func (s *Sexp) IsAtom() bool { return s != nil && !s.IsList }

// Len returns the number of children of a list, or 0 for an atom.
func (s *Sexp) Len() int {
	if s == nil || !s.IsList {
		return 0
	}
	return len(s.List)
}

// Nth returns the i'th child of a list, or nil when out of range or
// when s is an atom.
func (s *Sexp) Nth(i int) *Sexp {
	if s == nil || !s.IsList || i < 0 || i >= len(s.List) {
		return nil
	}
	return s.List[i]
}

// Tag returns the octets of the first child when it is an atom, which
// by SPKI convention names the type of a list expression ("cert",
// "tag", "public-key", ...). It returns "" for atoms, empty lists, and
// lists whose first element is itself a list.
func (s *Sexp) Tag() string {
	if s == nil || !s.IsList || len(s.List) == 0 || s.List[0].IsList {
		return ""
	}
	return string(s.List[0].Octets)
}

// Text returns the atom octets as a string ("" for lists).
func (s *Sexp) Text() string {
	if s == nil || s.IsList {
		return ""
	}
	return string(s.Octets)
}

// Copy returns a deep copy of s.
func (s *Sexp) Copy() *Sexp {
	if s == nil {
		return nil
	}
	if !s.IsList {
		return &Sexp{Octets: append([]byte(nil), s.Octets...), Hint: s.Hint}
	}
	kids := make([]*Sexp, len(s.List))
	for i, c := range s.List {
		kids[i] = c.Copy()
	}
	return &Sexp{IsList: true, List: kids}
}

// Equal reports whether two expressions are structurally identical,
// including display hints.
func Equal(a, b *Sexp) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.IsList != b.IsList {
		return false
	}
	if !a.IsList {
		return a.Hint == b.Hint && bytes.Equal(a.Octets, b.Octets)
	}
	if len(a.List) != len(b.List) {
		return false
	}
	for i := range a.List {
		if !Equal(a.List[i], b.List[i]) {
			return false
		}
	}
	return true
}

// Hash returns the SHA-256 hash of the canonical encoding of s. Two
// expressions hash equal exactly when Equal reports true.
func (s *Sexp) Hash() [32]byte {
	return sha256.Sum256(s.Canonical())
}

// Key returns the canonical encoding as a string, suitable for use as
// a map key.
func (s *Sexp) Key() string {
	return string(s.Canonical())
}

// SortChildren sorts the children of a list (after the leading type
// atom, if any) by canonical encoding. Atoms are unchanged. It is used
// to canonicalize set-valued expressions.
func (s *Sexp) SortChildren() {
	if s == nil || !s.IsList || len(s.List) < 2 {
		return
	}
	start := 0
	if !s.List[0].IsList {
		start = 1
	}
	rest := s.List[start:]
	sort.Slice(rest, func(i, j int) bool {
		return bytes.Compare(rest[i].Canonical(), rest[j].Canonical()) < 0
	})
}

// String renders the expression in advanced form for debugging.
func (s *Sexp) String() string {
	if s == nil {
		return "<nil>"
	}
	return string(s.Advanced())
}

// Path walks a list expression by type tags: Path("cert","issuer")
// returns the first child list tagged "issuer" of the first child list
// tagged "cert". It returns nil when any step is missing.
func (s *Sexp) Path(tags ...string) *Sexp {
	cur := s
	for _, t := range tags {
		if cur == nil || !cur.IsList {
			return nil
		}
		var next *Sexp
		for _, c := range cur.List {
			if c.IsList && c.Tag() == t {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// Child returns the first child list tagged tag, or nil.
func (s *Sexp) Child(tag string) *Sexp { return s.Path(tag) }

// MustText returns the atom text of the i'th child or an error naming
// what was expected; a convenience for decoding fixed-shape lists.
func (s *Sexp) MustText(i int, what string) (string, error) {
	c := s.Nth(i)
	if c == nil || c.IsList {
		return "", fmt.Errorf("sexp: expected %s atom at position %d of %s", what, i, s.Tag())
	}
	return string(c.Octets), nil
}
