package sexp

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAtomBasics(t *testing.T) {
	a := Atom([]byte("hello"))
	if a.IsList() {
		t.Fatal("atom reported as list")
	}
	if a.Text() != "hello" {
		t.Fatalf("Text = %q", a.Text())
	}
	if a.Len() != 0 {
		t.Fatalf("atom Len = %d", a.Len())
	}
	if a.Nth(0) != nil {
		t.Fatal("atom Nth should be nil")
	}
}

func TestListBasics(t *testing.T) {
	l := List(String("cert"), String("x"), List(String("inner")))
	if !l.IsList() {
		t.Fatal("list reported as atom")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Tag() != "cert" {
		t.Fatalf("Tag = %q", l.Tag())
	}
	if l.Nth(2).Tag() != "inner" {
		t.Fatalf("Nth(2).Tag = %q", l.Nth(2).Tag())
	}
	if l.Nth(3) != nil || l.Nth(-1) != nil {
		t.Fatal("out-of-range Nth should be nil")
	}
}

func TestTagOfAtomAndEmpty(t *testing.T) {
	if Atom([]byte("x")).Tag() != "" {
		t.Fatal("atom Tag should be empty")
	}
	if List().Tag() != "" {
		t.Fatal("empty list Tag should be empty")
	}
	if List(List(String("a"))).Tag() != "" {
		t.Fatal("list-headed list Tag should be empty")
	}
}

func TestCanonicalEncoding(t *testing.T) {
	cases := []struct {
		in   Sexp
		want string
	}{
		{Atom(nil), "0:"},
		{String("abc"), "3:abc"},
		{List(), "()"},
		{List(String("a"), String("bc")), "(1:a2:bc)"},
		{List(String("cert"), List(String("issuer"), String("k"))), "(4:cert(6:issuer1:k))"},
		{HintedAtom("text/plain", []byte("hi")), "[10:text/plain]2:hi"},
	}
	for _, c := range cases {
		got := string(c.in.Canonical())
		if got != c.want {
			t.Errorf("Canonical(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	exprs := []Sexp{
		Atom(nil),
		String("token"),
		Atom([]byte{0, 1, 2, 255}),
		HintedAtom("mime", []byte("data")),
		List(),
		List(String("tag"), List(String("web"), List(String("method"), String("GET")))),
		List(List(), List(List(String("deep")))),
	}
	for _, e := range exprs {
		enc := e.Canonical()
		got, err := ParseOne(enc)
		if err != nil {
			t.Fatalf("parse %q: %v", enc, err)
		}
		if !Equal(e, got) {
			t.Errorf("round trip %q: got %v", enc, got)
		}
	}
}

func TestParseAdvancedForms(t *testing.T) {
	cases := []struct {
		in   string
		want Sexp
	}{
		{`abc`, String("abc")},
		{`(a b c)`, List(String("a"), String("b"), String("c"))},
		{`"quoted string"`, String("quoted string")},
		{`"esc\"q\n"`, String("esc\"q\n")},
		{`|aGVsbG8=|`, String("hello")},
		{`#68656c6c6f#`, String("hello")},
		{`( a ( b "c d" ) )`, List(String("a"), List(String("b"), String("c d")))},
		{"(tag (*))", List(String("tag"), List(String("*")))},
	}
	for _, c := range cases {
		got, err := ParseOne([]byte(c.in))
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if !Equal(c.want, got) {
			t.Errorf("parse %q = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAdvancedRoundTrip(t *testing.T) {
	exprs := []Sexp{
		String("token"),
		String("with space"),
		Atom([]byte{0x00, 0xff}),
		List(String("cert"), String("9numeric-start"), Atom([]byte("bin\x01"))),
		HintedAtom("text/plain", []byte("hinted")),
	}
	for _, e := range exprs {
		enc := e.Advanced()
		got, err := ParseOne(enc)
		if err != nil {
			t.Fatalf("parse advanced %q: %v", enc, err)
		}
		if !Equal(e, got) {
			t.Errorf("advanced round trip %q -> %v", enc, got)
		}
	}
}

func TestTransportRoundTrip(t *testing.T) {
	e := List(String("cert"), List(String("issuer"), Atom([]byte{1, 2, 3})))
	enc := e.Transport()
	if enc[0] != '{' || enc[len(enc)-1] != '}' {
		t.Fatalf("transport framing: %q", enc)
	}
	got, err := ParseOne(enc)
	if err != nil {
		t.Fatalf("parse transport: %v", err)
	}
	if !Equal(e, got) {
		t.Errorf("transport round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", "(a", "3:ab", "(]", "\"unterminated", "|aGVsbG8", "#zz#",
		"[hint", "999999999999:x", "4:abc",
	}
	for _, in := range bad {
		if _, err := ParseOne([]byte(in)); err == nil {
			t.Errorf("ParseOne(%q) succeeded, want error", in)
		}
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, err := ParseOne([]byte("(a) junk")); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := ParseOne([]byte("(a)  \n ")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("(", MaxDepth+2) + strings.Repeat(")", MaxDepth+2)
	if _, err := ParseOne([]byte(deep)); err == nil {
		t.Fatal("over-deep input accepted")
	}
	ok := strings.Repeat("(", 10) + "a" + strings.Repeat(")", 10)
	if _, err := ParseOne([]byte(ok)); err != nil {
		t.Fatalf("reasonable nesting rejected: %v", err)
	}
}

func TestParseHostileDeepNesting(t *testing.T) {
	// A megabyte of open parens must produce a depth error, not grow
	// the goroutine stack: the parser is iterative, so the only cost is
	// scanning for the limit.
	hostile := bytes.Repeat([]byte{'('}, 1<<20)
	if _, _, err := Parse(hostile); err == nil {
		t.Fatal("hostile deep nesting accepted")
	}
	// Same through the transport decoder.
	inner := append(bytes.Repeat([]byte{'('}, MaxDepth+10), bytes.Repeat([]byte{')'}, MaxDepth+10)...)
	if _, err := ParseOne(List(String("x")).Transport()); err != nil {
		t.Fatalf("transport sanity: %v", err)
	}
	if _, _, err := Parse(transportOf(Raw(inner))); err == nil {
		t.Fatal("hostile nesting inside transport wrapper accepted")
	}
}

func TestEqualAndHash(t *testing.T) {
	a := List(String("x"), Atom([]byte{1}))
	b := List(String("x"), Atom([]byte{1}))
	c := List(String("x"), Atom([]byte{2}))
	if !Equal(a, b) {
		t.Fatal("equal expressions not Equal")
	}
	if Equal(a, c) {
		t.Fatal("different expressions Equal")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("equal expressions hash differently")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different expressions hash equal")
	}
	if Equal(a, nil) || !Equal(nil, nil) {
		t.Fatal("nil Equal semantics")
	}
	hintA := HintedAtom("h", []byte("x"))
	if Equal(hintA, String("x")) {
		t.Fatal("hint ignored by Equal")
	}
}

func TestRawBehavesLikeParsed(t *testing.T) {
	e := List(String("cert"), List(String("issuer"), String("ki")), Atom([]byte{1, 2}))
	r := Raw(e.Canonical())
	if !Equal(e, r) || !Equal(r, e) {
		t.Fatal("Raw not Equal to its source")
	}
	if r.Hash() != e.Hash() {
		t.Fatal("Raw hashes differently")
	}
	if !bytes.Equal(r.Canonical(), e.Canonical()) {
		t.Fatal("Raw canonical differs")
	}
	if r.Tag() != "cert" || r.Len() != 3 || r.Path("issuer") == nil {
		t.Fatal("Raw structural accessors broken")
	}
	if !Equal(r, r.Copy()) {
		t.Fatal("Raw Copy not Equal")
	}
	got, err := ParseOne(r.Transport())
	if err != nil || !Equal(e, got) {
		t.Fatalf("Raw transport round trip: %v", err)
	}
	if r.FormatLen() != len(e.Canonical()) {
		t.Fatal("Raw FormatLen wrong")
	}
	// Atom-shaped raw span.
	ra := Raw(String("tok").Canonical())
	if !ra.IsAtom() || ra.Text() != "tok" {
		t.Fatal("atom Raw broken")
	}
}

func TestCopyIsDeep(t *testing.T) {
	orig := List(String("a"), List(String("b")))
	cp := orig.Copy()
	cp.Nth(0).Bytes()[0] = 'z'
	cp.Nth(1).Nth(0).Bytes()[0] = 'z'
	if orig.Nth(0).Text() != "a" || orig.Nth(1).Nth(0).Text() != "b" {
		t.Fatal("Copy shares storage with original")
	}
}

func TestCopyOutlivesArena(t *testing.T) {
	a := GetArena()
	in := []byte("(4:cert(6:issuer2:ki)[4:mime]3:xyz)")
	s, err := a.ParseOne(in)
	if err != nil {
		t.Fatal(err)
	}
	cp := s.Copy()
	want := s.Canonical()
	PutArena(a)
	// Scribble over the input buffer the parse borrowed from.
	for i := range in {
		in[i] = 0
	}
	if !bytes.Equal(cp.Canonical(), want) {
		t.Fatal("Copy still referenced the arena or input buffer")
	}
}

func TestPath(t *testing.T) {
	e := List(String("cert"),
		List(String("issuer"), String("ki")),
		List(String("subject"), List(String("keyhash"), String("ks"))),
	)
	if got := e.Path("issuer"); got == nil || got.Nth(1).Text() != "ki" {
		t.Fatalf("Path(issuer) = %v", got)
	}
	if got := e.Path("subject", "keyhash"); got == nil || got.Nth(1).Text() != "ks" {
		t.Fatalf("Path(subject,keyhash) = %v", got)
	}
	if e.Path("nope") != nil {
		t.Fatal("missing path should be nil")
	}
}

func TestSortChildren(t *testing.T) {
	e := List(String("set"), String("c"), String("a"), String("b"))
	e.SortChildren()
	want := List(String("set"), String("a"), String("b"), String("c"))
	if !Equal(e, want) {
		t.Fatalf("SortChildren = %v", e)
	}
	// Leading list head: everything sorted.
	f := List(List(String("z")), List(String("a")))
	f.SortChildren()
	if f.Nth(0).Tag() != "a" {
		t.Fatalf("SortChildren with list head = %v", f)
	}
}

func TestFormatLenMatchesCanonical(t *testing.T) {
	exprs := []Sexp{
		Atom(nil), String("abcdef"),
		HintedAtom("hint", []byte("body")),
		List(String("a"), List(String("b"), Atom(bytes.Repeat([]byte{7}, 300)))),
	}
	for _, e := range exprs {
		if err := validateLen(e); err != nil {
			t.Error(err)
		}
	}
}

// randomSexp builds a random expression for property tests.
func randomSexp(r *rand.Rand, depth int) Sexp {
	if depth <= 0 || r.Intn(3) == 0 {
		n := r.Intn(12)
		b := make([]byte, n)
		r.Read(b)
		if r.Intn(4) == 0 {
			return HintedAtom("h", b)
		}
		return Atom(b)
	}
	n := r.Intn(4)
	kids := make([]Sexp, n)
	for i := range kids {
		kids[i] = randomSexp(r, depth-1)
	}
	return List(kids...)
}

func TestQuickCanonicalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomSexp(r, 4)
		got, err := ParseOne(e.Canonical())
		if err != nil {
			return false
		}
		return Equal(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAdvancedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomSexp(r, 4)
		got, err := ParseOne(e.Advanced())
		if err != nil {
			return false
		}
		return Equal(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransportRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomSexp(r, 3)
		got, err := ParseOne(e.Transport())
		if err != nil {
			return false
		}
		return Equal(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCopyEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomSexp(r, 4)
		return Equal(e, e.Copy())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickArenaAgreesWithFresh(t *testing.T) {
	// One warm arena parsing many expressions must give the same trees
	// as a fresh parse each time.
	a := GetArena()
	defer PutArena(a)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomSexp(r, 4)
		enc := e.Canonical()
		a.Reset()
		got, err := a.ParseOne(enc)
		if err != nil {
			return false
		}
		return Equal(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickFormatLen(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return validateLen(randomSexp(r, 4)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickHashInjective(t *testing.T) {
	// Different canonical encodings must give different Keys.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSexp(r, 3)
		b := randomSexp(r, 3)
		if Equal(a, b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParserFuzzSeeds(t *testing.T) {
	// Hostile inputs should error, never panic.
	inputs := []string{
		"((((((((", ")", "1:", "(1:a))", "{bad b64}", "{}", "[]x",
		"\x00\x01", "(|  |)", "\"\\q\"", "#6#",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Errorf("panic on %q: %v", in, rec)
				}
			}()
			Parse([]byte(in))
		}()
	}
}

func TestReflectDeepEqualAgreesWithEqual(t *testing.T) {
	a := List(String("x"))
	b := a.Copy()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("DeepEqual disagrees after Copy")
	}
}
