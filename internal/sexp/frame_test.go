package sexp

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	exprs := []Sexp{
		String("hello"),
		List(String("cert"), Atom([]byte{0, 1, 2, 0xff})),
		List(String("nested"), List(String("a"), String("b")), HintedAtom("text/plain", []byte("x"))),
	}
	var buf []byte
	for _, e := range exprs {
		buf = AppendFrame(buf, e)
	}
	r := bytes.NewReader(buf)
	total := 0
	for i, want := range exprs {
		got, n, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !Equal(got, want) {
			t.Fatalf("frame %d: got %s want %s", i, got, want)
		}
		total += n
	}
	if total != len(buf) {
		t.Fatalf("consumed %d of %d bytes", total, len(buf))
	}
	if _, n, err := ReadFrame(r); err != io.EOF || n != 0 {
		t.Fatalf("at end: n=%d err=%v, want clean EOF", n, err)
	}
}

func TestFrameTornTail(t *testing.T) {
	full := AppendFrame(AppendFrame(nil, String("first")), List(String("second"), String("payload")))
	// Cut at every point inside the second frame: the first must still
	// read cleanly, the second must report corruption, never EOF.
	firstLen := len(AppendFrame(nil, String("first")))
	for cut := firstLen + 1; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		if _, _, err := ReadFrame(r); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		_, _, err := ReadFrame(r)
		if !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("cut %d: second frame err = %v, want ErrFrameCorrupt", cut, err)
		}
	}
}

func TestFrameReaderStreams(t *testing.T) {
	// FrameReader must agree with ReadFrame while recycling its buffers,
	// and each returned expression is only valid until the next call —
	// so consume (Copy) before advancing.
	var buf []byte
	var want []Sexp
	for i := 0; i < 50; i++ {
		e := List(String("rec"), Atom(bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, e)
		buf = AppendFrame(buf, e)
	}
	r := bytes.NewReader(buf)
	var fr FrameReader
	for i, w := range want {
		got, _, err := fr.Next(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !Equal(got, w) {
			t.Fatalf("record %d: got %s want %s", i, got, w)
		}
	}
	if _, n, err := fr.Next(r); err != io.EOF || n != 0 {
		t.Fatalf("at end: n=%d err=%v, want clean EOF", n, err)
	}
}

func TestFrameCRCMismatch(t *testing.T) {
	buf := AppendFrame(nil, String("checksummed"))
	buf[len(buf)-1] ^= 0x40 // flip a payload bit; header CRC now disagrees
	if _, _, err := ReadFrame(bytes.NewReader(buf)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("err = %v, want ErrFrameCorrupt", err)
	}
}

func TestFrameOversizedLength(t *testing.T) {
	buf := AppendFrame(nil, String("x"))
	buf[0] = 0xff // declared length far beyond MaxTotal
	if _, _, err := ReadFrame(bytes.NewReader(buf)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("err = %v, want ErrFrameCorrupt", err)
	}
}
