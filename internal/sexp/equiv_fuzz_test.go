package sexp

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"testing"
)

// This file pins the typed arena parser and append-based encoder to
// the recursive parser and bytes.Buffer encoder they replaced. The
// reference implementation below is a test-local copy of the old
// code (pointer tree, one allocation per node): the fuzzer asserts
// that on every input both parsers agree on accept/reject, and that
// accepted expressions produce byte-identical canonical, transport,
// and advanced encodings. One deliberate delta is folded in: the old
// parser checked depth on entry to each recursive call, which let an
// empty list sit one level below MaxDepth; the new parser bounds open
// parens uniformly, and the reference mirrors that.

// refSexp is the old pointer-tree node.
type refSexp struct {
	isList bool
	octets []byte
	hint   string
	list   []*refSexp
}

type refParser struct {
	in  []byte
	pos int
}

func refParseOne(in []byte) (*refSexp, error) {
	s, n, err := refParse(in)
	if err != nil {
		return nil, err
	}
	for ; n < len(in); n++ {
		if !refIsSpace(in[n]) {
			return nil, fmt.Errorf("ref: trailing garbage at byte %d", n)
		}
	}
	return s, nil
}

func refParse(in []byte) (*refSexp, int, error) {
	if len(in) > MaxTotal {
		return nil, 0, fmt.Errorf("ref: input exceeds %d bytes", MaxTotal)
	}
	p := &refParser{in: in}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '{' {
		return p.parseTransport()
	}
	s, err := p.parse(0)
	if err != nil {
		return nil, p.pos, err
	}
	return s, p.pos, nil
}

func (p *refParser) parseTransport() (*refSexp, int, error) {
	start := p.pos
	p.pos++ // '{'
	end := p.pos
	for end < len(p.in) && p.in[end] != '}' {
		end++
	}
	if end >= len(p.in) {
		return nil, start, ErrTruncated
	}
	raw := make([]byte, 0, end-p.pos)
	for _, c := range p.in[p.pos:end] {
		if !refIsSpace(c) {
			raw = append(raw, c)
		}
	}
	dec := make([]byte, base64.StdEncoding.DecodedLen(len(raw)))
	n, err := base64.StdEncoding.Decode(dec, raw)
	if err != nil {
		return nil, start, fmt.Errorf("ref: bad transport base64: %v", err)
	}
	inner := &refParser{in: dec[:n]}
	s, err := inner.parse(0)
	if err != nil {
		return nil, start, err
	}
	p.pos = end + 1
	return s, p.pos, nil
}

func (p *refParser) parse(depth int) (*refSexp, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	switch c := p.in[p.pos]; {
	case c == '(':
		if depth >= MaxDepth {
			return nil, fmt.Errorf("ref: nesting exceeds %d", MaxDepth)
		}
		p.pos++
		list := []*refSexp{}
		for {
			p.skipSpace()
			if p.pos >= len(p.in) {
				return nil, ErrTruncated
			}
			if p.in[p.pos] == ')' {
				p.pos++
				return &refSexp{isList: true, list: list}, nil
			}
			child, err := p.parse(depth + 1)
			if err != nil {
				return nil, err
			}
			list = append(list, child)
		}
	case c == '[':
		p.pos++
		hint, err := p.parseAtomBody()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ']' {
			return nil, fmt.Errorf("ref: unterminated display hint at byte %d", p.pos)
		}
		p.pos++
		p.skipSpace()
		body, err := p.parseAtomBody()
		if err != nil {
			return nil, err
		}
		return &refSexp{octets: body, hint: string(hint)}, nil
	default:
		body, err := p.parseAtomBody()
		if err != nil {
			return nil, err
		}
		return &refSexp{octets: body}, nil
	}
}

func (p *refParser) parseAtomBody() ([]byte, error) {
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	c := p.in[p.pos]
	switch {
	case c >= '0' && c <= '9':
		return p.parseVerbatim()
	case c == '"':
		return p.parseQuoted()
	case c == '|':
		return p.parseBase64()
	case c == '#':
		return p.parseHex()
	case isTokenChar(c):
		start := p.pos
		for p.pos < len(p.in) && isTokenChar(p.in[p.pos]) {
			p.pos++
		}
		return append([]byte(nil), p.in[start:p.pos]...), nil
	default:
		return nil, fmt.Errorf("ref: unexpected byte %q at %d", c, p.pos)
	}
}

func (p *refParser) parseVerbatim() ([]byte, error) {
	start := p.pos
	n := 0
	tooBig := false
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		n = n*10 + int(p.in[p.pos]-'0')
		if n > MaxAtomLen {
			tooBig = true
			n = MaxAtomLen + 1
		}
		p.pos++
	}
	if p.pos >= len(p.in) || p.in[p.pos] != ':' {
		for p.pos < len(p.in) && isTokenChar(p.in[p.pos]) && p.in[p.pos] != ':' {
			p.pos++
		}
		return append([]byte(nil), p.in[start:p.pos]...), nil
	}
	if tooBig {
		return nil, fmt.Errorf("ref: atom exceeds %d bytes", MaxAtomLen)
	}
	p.pos++
	if p.pos+n > len(p.in) {
		return nil, ErrTruncated
	}
	out := append([]byte(nil), p.in[p.pos:p.pos+n]...)
	p.pos += n
	return out, nil
}

func (p *refParser) parseQuoted() ([]byte, error) {
	p.pos++ // opening quote
	var out []byte
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch c {
		case '"':
			p.pos++
			return out, nil
		case '\\':
			p.pos++
			if p.pos >= len(p.in) {
				return nil, ErrTruncated
			}
			switch e := p.in[p.pos]; e {
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case '"', '\\':
				out = append(out, e)
			default:
				return nil, fmt.Errorf("ref: bad escape \\%c at byte %d", e, p.pos)
			}
			p.pos++
		default:
			out = append(out, c)
			p.pos++
		}
		if len(out) > MaxAtomLen {
			return nil, fmt.Errorf("ref: atom exceeds %d bytes", MaxAtomLen)
		}
	}
	return nil, ErrTruncated
}

func (p *refParser) parseBase64() ([]byte, error) {
	p.pos++ // opening |
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '|' {
		p.pos++
	}
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	raw := make([]byte, 0, p.pos-start)
	for _, c := range p.in[start:p.pos] {
		if !refIsSpace(c) {
			raw = append(raw, c)
		}
	}
	p.pos++ // closing |
	dec := make([]byte, base64.StdEncoding.DecodedLen(len(raw)))
	n, err := base64.StdEncoding.Decode(dec, raw)
	if err != nil {
		return nil, fmt.Errorf("ref: bad base64 atom: %v", err)
	}
	return dec[:n], nil
}

func (p *refParser) parseHex() ([]byte, error) {
	p.pos++ // opening #
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '#' {
		p.pos++
	}
	if p.pos >= len(p.in) {
		return nil, ErrTruncated
	}
	raw := make([]byte, 0, p.pos-start)
	for _, c := range p.in[start:p.pos] {
		if !refIsSpace(c) {
			raw = append(raw, c)
		}
	}
	p.pos++ // closing #
	out := make([]byte, hex.DecodedLen(len(raw)))
	if _, err := hex.Decode(out, raw); err != nil {
		return nil, fmt.Errorf("ref: bad hex atom: %v", err)
	}
	return out, nil
}

func (p *refParser) skipSpace() {
	for p.pos < len(p.in) && refIsSpace(p.in[p.pos]) {
		p.pos++
	}
}

func refIsSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// refCanonical is the old bytes.Buffer canonical encoder.
func refCanonical(s *refSexp) []byte {
	var buf bytes.Buffer
	refCanonicalTo(&buf, s)
	return buf.Bytes()
}

func refCanonicalTo(buf *bytes.Buffer, s *refSexp) {
	if s == nil {
		return
	}
	if !s.isList {
		if s.hint != "" {
			buf.WriteByte('[')
			refWriteVerbatim(buf, []byte(s.hint))
			buf.WriteByte(']')
		}
		refWriteVerbatim(buf, s.octets)
		return
	}
	buf.WriteByte('(')
	for _, c := range s.list {
		refCanonicalTo(buf, c)
	}
	buf.WriteByte(')')
}

func refWriteVerbatim(buf *bytes.Buffer, b []byte) {
	buf.WriteString(strconv.Itoa(len(b)))
	buf.WriteByte(':')
	buf.Write(b)
}

// FuzzParserEquivalence feeds arbitrary bytes to both parsers. The
// old one defines the language; the new one must accept exactly the
// same inputs and mean the same thing by them, where "the same thing"
// is canonical-form identity (canonical form is injective over the
// value model, so byte equality is value equality). Accepted inputs
// are then pushed around the full encoding cycle: the new encoder's
// canonical, transport, and advanced renderings must each parse —
// under the REFERENCE parser — back to the same canonical bytes,
// which pins encoder output, not just parser behavior.
func FuzzParserEquivalence(f *testing.F) {
	seeds := [][]byte{
		[]byte("(3:abc(1:x))"),
		[]byte("()"),
		[]byte("0:"),
		[]byte("(cert (issuer 5:alice) (subject 3:bob))"),
		[]byte(`("quoted string" "with \n escape")`),
		[]byte("(|YWJj| #616263# token)"),
		[]byte("[text/plain]3:abc"),
		[]byte("{KDM6YWJjKQ==}"),
		[]byte("( a ( b ( c ) ) )"),
		[]byte("(10 10:ten bytes!!)"),
		bytes.Repeat([]byte("("), 200),
		append(bytes.Repeat([]byte("("), 127), append([]byte("1:x"), bytes.Repeat([]byte(")"), 127)...)...),
		[]byte("999999999999999999999:x"),
		[]byte("3:ab"),
		[]byte("#zz#"),
		[]byte("|***|"),
		[]byte("(1:a"),
		[]byte("1:a 1:b"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		ref, refErr := refParseOne(in)
		got, gotErr := ParseOne(in)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("accept mismatch on %q: ref err=%v, new err=%v", in, refErr, gotErr)
		}
		if refErr != nil {
			// Both rejected; also agree on truncation vs malformed for
			// the streaming reader's benefit.
			if errors.Is(refErr, ErrTruncated) != errors.Is(gotErr, ErrTruncated) {
				t.Fatalf("truncation mismatch on %q: ref=%v new=%v", in, refErr, gotErr)
			}
			return
		}
		refCan := refCanonical(ref)
		newCan := got.Canonical()
		if !bytes.Equal(refCan, newCan) {
			t.Fatalf("canonical mismatch on %q:\nref  %q\nnew  %q", in, refCan, newCan)
		}
		// Encoder cycle: every rendering the new encoder produces must
		// mean the same value to the old parser.
		for _, enc := range [][]byte{newCan, got.Transport(), got.Advanced()} {
			back, err := refParseOne(enc)
			if err != nil {
				t.Fatalf("ref parser rejects new encoding %q of %q: %v", enc, in, err)
			}
			if !bytes.Equal(refCanonical(back), refCan) {
				t.Fatalf("encoding %q of %q re-parses to %q, want %q",
					enc, in, refCanonical(back), refCan)
			}
		}
		// And the arena parser must agree with itself on its own
		// canonical output (round-trip stability).
		again, err := ParseOne(newCan)
		if err != nil {
			t.Fatalf("new parser rejects own canonical %q: %v", newCan, err)
		}
		if !bytes.Equal(again.Canonical(), newCan) {
			t.Fatalf("canonical not a fixed point: %q -> %q", newCan, again.Canonical())
		}
	})
}
