// Package namesvc is the name service Snowflake clients use to
// retrieve object references (Figure 4 step d) and the home of SDSI
// name bindings: certificates that bind a principal's local name
// ("KC·N" in Figure 1) to another principal. Proofs involving names
// compose through core's name-monotonicity rule, and authorization
// information is collected in the course of resolving names
// (section 4.4).
package namesvc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/rmi"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Entry is one directory record: a name bound to a service address
// and the principal that controls the service.
type Entry struct {
	Name      string
	Address   string // dialable address, e.g. "127.0.0.1:7001"
	Principal []byte // transport-encoded principal controlling the service
}

// Directory is the remote name-service object.
type Directory struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]Entry)}
}

// BindArgs registers or replaces an entry.
type BindArgs struct{ E Entry }

// BindReply acknowledges.
type BindReply struct{ Replaced bool }

// LookupArgs resolves a name.
type LookupArgs struct{ Name string }

// LookupReply returns the entry.
type LookupReply struct {
	Found bool
	E     Entry
}

// ListArgs lists all names.
type ListArgs struct{}

// ListReply returns the names.
type ListReply struct{ Names []string }

// Bind implements the remote method.
func (d *Directory) Bind(args BindArgs, reply *BindReply) error {
	if args.E.Name == "" {
		return fmt.Errorf("namesvc: empty name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, reply.Replaced = d.entries[args.E.Name]
	d.entries[args.E.Name] = args.E
	return nil
}

// Lookup implements the remote method.
func (d *Directory) Lookup(args LookupArgs, reply *LookupReply) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	reply.E, reply.Found = d.entries[args.Name]
	return nil
}

// List implements the remote method.
func (d *Directory) List(args ListArgs, reply *ListReply) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for n := range d.entries {
		reply.Names = append(reply.Names, n)
	}
	return nil
}

// OpTag scopes directory operations: (ns (op bind) (name "x")).
func OpTag(op, name string) tag.Tag {
	return tag.ListOf(
		tag.Literal("ns"),
		tag.ListOf(tag.Literal("op"), tag.Literal(op)),
		tag.ListOf(tag.Literal("name"), tag.Literal(name)),
	)
}

// TagFor is the rmi.TagFunc for the directory: binds require per-name
// authority; lookups and lists are cheap reads but still attributed.
func TagFor(object, method string, args interface{}) tag.Tag {
	switch a := args.(type) {
	case BindArgs:
		return OpTag("bind", a.E.Name)
	case LookupArgs:
		return OpTag("lookup", a.Name)
	case ListArgs:
		return OpTag("list", "")
	default:
		return rmi.MethodTag(object, method)
	}
}

// ObjectName is the conventional RMI name.
const ObjectName = "names"

// Register installs the directory on an RMI server.
func Register(srv *rmi.Server, d *Directory, issuer principal.Principal) error {
	return srv.Register(ObjectName, d, issuer, TagFor)
}

// --- SDSI name certificates ---------------------------------------------

// BindName issues the certificate "target speaks for owner·name":
// owner's local namespace binds name to target. Chains of such
// certificates compose with name-monotonicity into Figure 1 proofs.
func BindName(owner *sfkey.PrivateKey, name string, target principal.Principal, v core.Validity) (*cert.Cert, error) {
	return cert.Sign(owner, core.SpeaksFor{
		Subject:  target,
		Issuer:   principal.NameOf(principal.KeyOf(owner.Public()), name),
		Tag:      tag.All(),
		Validity: v,
	})
}

// BindNameTTL is BindName with a duration.
func BindNameTTL(owner *sfkey.PrivateKey, name string, target principal.Principal, ttl time.Duration) (*cert.Cert, error) {
	return BindName(owner, name, target, core.Until(time.Now().Add(ttl)))
}

// Resolve walks a name path through a set of binding certificates,
// returning the bound principal: the client-side counterpart of
// building proofs incrementally while resolving names.
func Resolve(start principal.Principal, path []string, certs []*cert.Cert) (principal.Principal, []core.Proof, error) {
	cur := start
	var steps []core.Proof
	for _, n := range path {
		want := principal.NameOf(cur, n)
		var found *cert.Cert
		for _, c := range certs {
			if principal.Equal(c.Body.Issuer, want) {
				found = c
				break
			}
		}
		if found == nil {
			return nil, nil, fmt.Errorf("namesvc: no binding for %s", want)
		}
		steps = append(steps, found)
		cur = found.Body.Subject
	}
	return cur, steps, nil
}
