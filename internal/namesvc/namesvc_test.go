package namesvc

import (
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func TestDirectoryLocal(t *testing.T) {
	d := NewDirectory()
	var br BindReply
	if err := d.Bind(BindArgs{E: Entry{Name: "db", Address: "127.0.0.1:7001"}}, &br); err != nil {
		t.Fatal(err)
	}
	if br.Replaced {
		t.Fatal("fresh bind reported replaced")
	}
	if err := d.Bind(BindArgs{E: Entry{Name: "db", Address: "127.0.0.1:7002"}}, &br); err != nil || !br.Replaced {
		t.Fatal("rebind not reported")
	}
	var lr LookupReply
	if err := d.Lookup(LookupArgs{Name: "db"}, &lr); err != nil || !lr.Found {
		t.Fatal("lookup failed")
	}
	if lr.E.Address != "127.0.0.1:7002" {
		t.Fatalf("address = %q", lr.E.Address)
	}
	if err := d.Lookup(LookupArgs{Name: "missing"}, &lr); err != nil || lr.Found {
		t.Fatal("missing lookup should report not found")
	}
	var list ListReply
	d.List(ListArgs{}, &list)
	if len(list.Names) != 1 {
		t.Fatalf("names = %v", list.Names)
	}
	if err := d.Bind(BindArgs{E: Entry{}}, &br); err == nil {
		t.Fatal("empty name bound")
	}
}

func TestDirectoryOverRMIWithScopedBinds(t *testing.T) {
	adminKey := sfkey.FromSeed([]byte("ns-admin"))
	issuer := principal.KeyOf(adminKey.Public())
	srv := rmi.NewServer()
	if err := Register(srv, NewDirectory(), issuer); err != nil {
		t.Fatal(err)
	}
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: adminKey})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	// User may bind only names under its own: grant (ns (op bind)
	// (name "alice-svc")) plus lookups of anything.
	userKey := sfkey.FromSeed([]byte("ns-user"))
	user := principal.KeyOf(userKey.Public())
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	grant := tag.SetOf(
		OpTag("bind", "alice-svc"),
		tag.ListOf(tag.Literal("ns"), tag.ListOf(tag.Literal("op"), tag.Literal("lookup"))),
	)
	c1, err := cert.Delegate(adminKey, user, issuer, grant, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(c1)
	id, _ := secure.NewIdentity()
	cli, err := rmi.Dial(secure.Dialer{ID: id}, l.Addr().String(), pv)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var br BindReply
	if err := cli.Call(ObjectName, "Bind", BindArgs{E: Entry{Name: "alice-svc", Address: "x:1"}}, &br); err != nil {
		t.Fatalf("authorized bind failed: %v", err)
	}
	if err := cli.Call(ObjectName, "Bind", BindArgs{E: Entry{Name: "other", Address: "y:2"}}, &br); err == nil {
		t.Fatal("out-of-scope bind succeeded")
	}
	var lr LookupReply
	if err := cli.Call(ObjectName, "Lookup", LookupArgs{Name: "alice-svc"}, &lr); err != nil || !lr.Found {
		t.Fatalf("lookup failed: %v", err)
	}
}

func TestBindNameAndResolve(t *testing.T) {
	// Alice's namespace: alice·"mail" -> Bob's key; Bob's namespace:
	// bob·"backup" -> Carol's key. Resolve alice·mail, then compose a
	// Figure 1 style proof through name-monotonicity.
	aliceKey := sfkey.FromSeed([]byte("sdsi-alice"))
	bobKey := sfkey.FromSeed([]byte("sdsi-bob"))
	carol := principal.KeyOf(sfkey.FromSeed([]byte("sdsi-carol")).Public())
	bob := principal.KeyOf(bobKey.Public())
	alice := principal.KeyOf(aliceKey.Public())

	c1, err := BindNameTTL(aliceKey, "mail", bob, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BindNameTTL(bobKey, "backup", carol, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	got, steps, err := Resolve(alice, []string{"mail"}, []*cert.Cert{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if !principal.Equal(got, bob) || len(steps) != 1 {
		t.Fatalf("resolve = %s (%d steps)", got, len(steps))
	}
	// Unresolvable path.
	if _, _, err := Resolve(alice, []string{"nope"}, []*cert.Cert{c1, c2}); err == nil {
		t.Fatal("bogus name resolved")
	}
	// The binding is a proof usable in the logic: bob => alice·mail.
	ctx := core.NewVerifyContext()
	if err := c1.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	want := principal.NameOf(alice, "mail")
	if !principal.Equal(c1.Conclusion().Issuer, want) {
		t.Fatalf("binding issuer = %s", c1.Conclusion().Issuer)
	}
}
