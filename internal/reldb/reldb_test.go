package reldb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func msgSchema() Schema {
	return Schema{
		Name: "messages",
		Columns: []Column{
			{Name: "id", Type: Int},
			{Name: "owner", Type: String},
			{Name: "subject", Type: String},
			{Name: "date", Type: Time},
			{Name: "read", Type: Bool},
		},
		Key:     "id",
		Indexes: []string{"owner"},
	}
}

func mkRow(id int64, owner, subject string, d time.Time) Row {
	return Row{
		"id":      IntV(id),
		"owner":   StringV(owner),
		"subject": StringV(subject),
		"date":    TimeV(d),
		"read":    BoolV(false),
	}
}

func newDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.CreateTable(msgSchema()); err != nil {
		t.Fatal(err)
	}
	return db
}

var day = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func TestInsertAndSelect(t *testing.T) {
	db := newDB(t)
	for i := 1; i <= 5; i++ {
		owner := "alice"
		if i%2 == 0 {
			owner = "bob"
		}
		if _, err := db.Insert("messages", mkRow(int64(i), owner, fmt.Sprintf("s%d", i), day.Add(time.Duration(i)*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Select(Query{Table: "messages", Where: []Cond{{Col: "owner", Op: Eq, Val: StringV("alice")}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("alice rows = %d", len(rows))
	}
	for _, r := range rows {
		if r["owner"].S != "alice" {
			t.Fatalf("leaked row: %v", r)
		}
	}
}

func TestSchemaEnforcement(t *testing.T) {
	db := newDB(t)
	// Wrong type.
	bad := mkRow(1, "a", "s", day)
	bad["id"] = StringV("not-an-int")
	if _, err := db.Insert("messages", bad); err == nil {
		t.Fatal("wrong type accepted")
	}
	// Missing column.
	short := mkRow(1, "a", "s", day)
	delete(short, "read")
	if _, err := db.Insert("messages", short); err == nil {
		t.Fatal("missing column accepted")
	}
	// Extra column.
	extra := mkRow(1, "a", "s", day)
	extra["bogus"] = IntV(1)
	if _, err := db.Insert("messages", extra); err == nil {
		t.Fatal("extra column accepted")
	}
	// Unknown table.
	if _, err := db.Insert("nope", mkRow(1, "a", "s", day)); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestPrimaryKeyUnique(t *testing.T) {
	db := newDB(t)
	if _, err := db.Insert("messages", mkRow(1, "a", "s", day)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("messages", mkRow(1, "b", "t", day)); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestOperators(t *testing.T) {
	db := newDB(t)
	for i := 1; i <= 10; i++ {
		db.Insert("messages", mkRow(int64(i), "alice", fmt.Sprintf("subj-%02d", i), day.Add(time.Duration(i)*time.Hour)))
	}
	cases := []struct {
		cond Cond
		want int
	}{
		{Cond{"id", Eq, IntV(5)}, 1},
		{Cond{"id", Ne, IntV(5)}, 9},
		{Cond{"id", Lt, IntV(4)}, 3},
		{Cond{"id", Le, IntV(4)}, 4},
		{Cond{"id", Gt, IntV(8)}, 2},
		{Cond{"id", Ge, IntV(8)}, 3},
		{Cond{"subject", Prefix, StringV("subj-0")}, 9},
		{Cond{"date", Lt, TimeV(day.Add(3 * time.Hour))}, 2},
	}
	for _, c := range cases {
		rows, err := db.Select(Query{Table: "messages", Where: []Cond{c.cond}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != c.want {
			t.Errorf("cond %+v -> %d rows, want %d", c.cond, len(rows), c.want)
		}
	}
}

func TestConjunctiveWhere(t *testing.T) {
	db := newDB(t)
	for i := 1; i <= 10; i++ {
		owner := "alice"
		if i > 5 {
			owner = "bob"
		}
		db.Insert("messages", mkRow(int64(i), owner, "s", day))
	}
	rows, _ := db.Select(Query{Table: "messages", Where: []Cond{
		{Col: "owner", Op: Eq, Val: StringV("bob")},
		{Col: "id", Op: Le, Val: IntV(7)},
	}})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := newDB(t)
	for i := 1; i <= 5; i++ {
		db.Insert("messages", mkRow(int64(i), "a", "s", day.Add(time.Duration(6-i)*time.Hour)))
	}
	rows, _ := db.Select(Query{Table: "messages", OrderBy: "date", Limit: 3})
	if len(rows) != 3 {
		t.Fatalf("limit ignored: %d", len(rows))
	}
	if !(rows[0]["date"].T.Before(rows[1]["date"].T) && rows[1]["date"].T.Before(rows[2]["date"].T)) {
		t.Fatal("ascending order wrong")
	}
	rows, _ = db.Select(Query{Table: "messages", OrderBy: "date", Desc: true, Limit: 1})
	if rows[0]["id"].I != 1 {
		t.Fatalf("desc order wrong: %v", rows[0])
	}
	// Default ordering is by primary key: deterministic.
	rows, _ = db.Select(Query{Table: "messages"})
	for i := 1; i < len(rows); i++ {
		if rows[i-1]["id"].I >= rows[i]["id"].I {
			t.Fatal("default order not by key")
		}
	}
}

func TestUpdate(t *testing.T) {
	db := newDB(t)
	for i := 1; i <= 4; i++ {
		db.Insert("messages", mkRow(int64(i), "alice", "s", day))
	}
	n, err := db.Update("messages",
		[]Cond{{Col: "id", Op: Le, Val: IntV(2)}},
		Row{"read": BoolV(true)})
	if err != nil || n != 2 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	rows, _ := db.Select(Query{Table: "messages", Where: []Cond{{Col: "read", Op: Eq, Val: BoolV(true)}}})
	if len(rows) != 2 {
		t.Fatalf("read rows = %d", len(rows))
	}
	// Updating the key column is refused.
	if _, err := db.Update("messages", nil, Row{"id": IntV(99)}); err == nil {
		t.Fatal("key update accepted")
	}
	// Updating an indexed column keeps the index coherent.
	n, err = db.Update("messages",
		[]Cond{{Col: "id", Op: Eq, Val: IntV(1)}},
		Row{"owner": StringV("bob")})
	if err != nil || n != 1 {
		t.Fatal(err)
	}
	rows, _ = db.Select(Query{Table: "messages", Where: []Cond{{Col: "owner", Op: Eq, Val: StringV("bob")}}})
	if len(rows) != 1 || rows[0]["id"].I != 1 {
		t.Fatalf("index stale after update: %v", rows)
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	for i := 1; i <= 4; i++ {
		db.Insert("messages", mkRow(int64(i), "alice", "s", day))
	}
	n, err := db.Delete("messages", []Cond{{Col: "id", Op: Gt, Val: IntV(2)}})
	if err != nil || n != 2 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	if c, _ := db.Count("messages"); c != 2 {
		t.Fatalf("count = %d", c)
	}
	// Key is reusable after delete.
	if _, err := db.Insert("messages", mkRow(3, "alice", "again", day)); err != nil {
		t.Fatalf("key not released: %v", err)
	}
	// Index coherent after delete.
	rows, _ := db.Select(Query{Table: "messages", Where: []Cond{{Col: "owner", Op: Eq, Val: StringV("alice")}}})
	if len(rows) != 3 {
		t.Fatalf("index stale after delete: %d", len(rows))
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := New()
	if err := db.CreateTable(Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "a", Type: Int}}, Key: "zz"}); err == nil {
		t.Fatal("bad key accepted")
	}
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "a", Type: Int}}, Indexes: []string{"zz"}}); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "a", Type: Int}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "a", Type: Int}}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestSelectReturnsCopies(t *testing.T) {
	db := newDB(t)
	db.Insert("messages", mkRow(1, "alice", "orig", day))
	rows, _ := db.Select(Query{Table: "messages"})
	rows[0]["subject"] = StringV("mutated")
	rows2, _ := db.Select(Query{Table: "messages"})
	if rows2[0]["subject"].S != "orig" {
		t.Fatal("Select leaks internal storage")
	}
}

// Property: indexed equality selects exactly the same rows as a full
// scan with the same predicate.
func TestQuickIndexAgreesWithScan(t *testing.T) {
	g := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := New()
		db.CreateTable(msgSchema())
		owners := []string{"a", "b", "c"}
		total := 20 + r.Intn(30)
		counts := map[string]int{}
		for i := 0; i < total; i++ {
			o := owners[r.Intn(len(owners))]
			counts[o]++
			db.Insert("messages", mkRow(int64(i), o, "s", day))
		}
		for _, o := range owners {
			rows, err := db.Select(Query{Table: "messages",
				Where: []Cond{{Col: "owner", Op: Eq, Val: StringV(o)}}})
			if err != nil || len(rows) != counts[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: insert-then-delete round trips to the original count.
func TestQuickInsertDeleteInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := New()
		db.CreateTable(msgSchema())
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			db.Insert("messages", mkRow(int64(i), "x", "s", day))
		}
		deleted, _ := db.Delete("messages", []Cond{{Col: "owner", Op: Eq, Val: StringV("x")}})
		c, _ := db.Count("messages")
		return deleted == n && c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	db := newDB(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				db.Insert("messages", mkRow(int64(w*1000+i), "alice", "s", day))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				db.Select(Query{Table: "messages", Where: []Cond{{Col: "owner", Op: Eq, Val: StringV("alice")}}})
			}
		}()
	}
	wg.Wait()
	if c, _ := db.Count("messages"); c != 200 {
		t.Fatalf("count = %d, want 200", c)
	}
}
