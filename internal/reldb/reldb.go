// Package reldb is a small in-memory relational database engine: the
// substrate under the protected email database of paper section 6.2
// ("the original database server accepts insert, update, and select
// requests ... and returns the results of the query"). It provides
// typed schemas, predicates, secondary hash indexes, ordering, and
// limits — enough relational machinery for the gateway to "construct
// a view of an e-mail message from several rows and tables" (6.3).
package reldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ColType enumerates column types.
type ColType int

// Column types.
const (
	Int ColType = iota
	String
	Bytes
	Time
	Bool
)

func (t ColType) String() string {
	switch t {
	case Int:
		return "int"
	case String:
		return "string"
	case Bytes:
		return "bytes"
	case Time:
		return "time"
	case Bool:
		return "bool"
	}
	return "unknown"
}

// Value is a dynamically typed cell. Exactly one field is meaningful,
// selected by Type. Gob-friendly (exported fields, no interfaces).
type Value struct {
	Type ColType
	I    int64
	S    string
	B    []byte
	T    time.Time
	Bool bool
}

// Typed constructors.
func IntV(v int64) Value      { return Value{Type: Int, I: v} }
func StringV(v string) Value  { return Value{Type: String, S: v} }
func BytesV(v []byte) Value   { return Value{Type: Bytes, B: v} }
func TimeV(v time.Time) Value { return Value{Type: Time, T: v} }
func BoolV(v bool) Value      { return Value{Type: Bool, Bool: v} }

// key returns a map key for hashing and equality.
func (v Value) key() string {
	switch v.Type {
	case Int:
		return fmt.Sprintf("i%d", v.I)
	case String:
		return "s" + v.S
	case Bytes:
		return "b" + string(v.B)
	case Time:
		return "t" + v.T.UTC().Format(time.RFC3339Nano)
	case Bool:
		if v.Bool {
			return "B1"
		}
		return "B0"
	}
	return "?"
}

// compare orders two values of the same type; panics are avoided by
// treating cross-type comparisons as type-name ordering.
func (v Value) compare(o Value) int {
	if v.Type != o.Type {
		return strings.Compare(v.Type.String(), o.Type.String())
	}
	switch v.Type {
	case Int:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case String:
		return strings.Compare(v.S, o.S)
	case Bytes:
		return strings.Compare(string(v.B), string(o.B))
	case Time:
		switch {
		case v.T.Before(o.T):
			return -1
		case v.T.After(o.T):
			return 1
		}
		return 0
	case Bool:
		switch {
		case !v.Bool && o.Bool:
			return -1
		case v.Bool && !o.Bool:
			return 1
		}
		return 0
	}
	return 0
}

// Column describes one attribute.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table.
type Schema struct {
	Name    string
	Columns []Column
	// Key is the primary key column (must be unique); empty means
	// rowid-only.
	Key string
	// Indexes lists columns with secondary hash indexes.
	Indexes []string
}

// Row is a tuple keyed by column name.
type Row map[string]Value

// clone copies a row.
func (r Row) clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Op enumerates predicate operators.
type Op int

// Predicate operators.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Prefix // string prefix match
)

// Cond is one conjunct of a WHERE clause.
type Cond struct {
	Col string
	Op  Op
	Val Value
}

// Query selects rows from one table: conjunctive conditions, optional
// ordering, optional limit (0 = unlimited).
type Query struct {
	Table   string
	Where   []Cond
	OrderBy string
	Desc    bool
	Limit   int
}

// DB is a set of tables; safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

type table struct {
	schema  Schema
	colType map[string]ColType
	rows    map[int64]Row // rowid -> row
	nextID  int64
	// pk maps primary key value -> rowid.
	pk map[string]int64
	// idx maps column -> value-key -> set of rowids.
	idx map[string]map[string]map[int64]bool
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable installs a schema.
func (db *DB) CreateTable(s Schema) error {
	if s.Name == "" || len(s.Columns) == 0 {
		return fmt.Errorf("reldb: empty schema")
	}
	ct := make(map[string]ColType, len(s.Columns))
	for _, c := range s.Columns {
		if _, dup := ct[c.Name]; dup {
			return fmt.Errorf("reldb: duplicate column %q", c.Name)
		}
		ct[c.Name] = c.Type
	}
	if s.Key != "" {
		if _, ok := ct[s.Key]; !ok {
			return fmt.Errorf("reldb: key column %q not in schema", s.Key)
		}
	}
	t := &table{
		schema:  s,
		colType: ct,
		rows:    make(map[int64]Row),
		pk:      make(map[string]int64),
		idx:     make(map[string]map[string]map[int64]bool),
	}
	for _, col := range s.Indexes {
		if _, ok := ct[col]; !ok {
			return fmt.Errorf("reldb: indexed column %q not in schema", col)
		}
		t.idx[col] = make(map[string]map[int64]bool)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[s.Name]; dup {
		return fmt.Errorf("reldb: table %q exists", s.Name)
	}
	db.tables[s.Name] = t
	return nil
}

// Tables lists table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (db *DB) table(name string) (*table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("reldb: no table %q", name)
	}
	return t, nil
}

// checkRow validates a row against the schema; missing columns are an
// error, extra columns are an error.
func (t *table) checkRow(r Row) error {
	if len(r) != len(t.colType) {
		return fmt.Errorf("reldb: row has %d columns, schema %q has %d", len(r), t.schema.Name, len(t.colType))
	}
	for name, v := range r {
		want, ok := t.colType[name]
		if !ok {
			return fmt.Errorf("reldb: unknown column %q", name)
		}
		if v.Type != want {
			return fmt.Errorf("reldb: column %q wants %s, got %s", name, want, v.Type)
		}
	}
	return nil
}

// Insert adds a row, returning its rowid.
func (db *DB) Insert(tableName string, r Row) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	if err := t.checkRow(r); err != nil {
		return 0, err
	}
	if t.schema.Key != "" {
		k := r[t.schema.Key].key()
		if _, dup := t.pk[k]; dup {
			return 0, fmt.Errorf("reldb: duplicate key %v in %q", r[t.schema.Key], tableName)
		}
	}
	t.nextID++
	id := t.nextID
	row := r.clone()
	t.rows[id] = row
	if t.schema.Key != "" {
		t.pk[row[t.schema.Key].key()] = id
	}
	for col, byVal := range t.idx {
		vk := row[col].key()
		if byVal[vk] == nil {
			byVal[vk] = make(map[int64]bool)
		}
		byVal[vk][id] = true
	}
	return id, nil
}

// matchRow tests all conjuncts.
func matchRow(r Row, where []Cond) bool {
	for _, c := range where {
		v, ok := r[c.Col]
		if !ok {
			return false
		}
		switch c.Op {
		case Eq:
			if v.compare(c.Val) != 0 {
				return false
			}
		case Ne:
			if v.compare(c.Val) == 0 {
				return false
			}
		case Lt:
			if v.compare(c.Val) >= 0 {
				return false
			}
		case Le:
			if v.compare(c.Val) > 0 {
				return false
			}
		case Gt:
			if v.compare(c.Val) <= 0 {
				return false
			}
		case Ge:
			if v.compare(c.Val) < 0 {
				return false
			}
		case Prefix:
			if v.Type != String || c.Val.Type != String || !strings.HasPrefix(v.S, c.Val.S) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// candidateIDs picks the cheapest access path: an equality condition
// on an indexed column, else a full scan.
func (t *table) candidateIDs(where []Cond) []int64 {
	for _, c := range where {
		if c.Op != Eq {
			continue
		}
		if byVal, ok := t.idx[c.Col]; ok {
			ids := make([]int64, 0, len(byVal[c.Val.key()]))
			for id := range byVal[c.Val.key()] {
				ids = append(ids, id)
			}
			return ids
		}
		if t.schema.Key == c.Col {
			if id, ok := t.pk[c.Val.key()]; ok {
				return []int64{id}
			}
			return nil
		}
	}
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	return ids
}

// Select runs a query and returns matching rows (copies).
func (db *DB) Select(q Query) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(q.Table)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, id := range t.candidateIDs(q.Where) {
		r, ok := t.rows[id]
		if !ok || !matchRow(r, q.Where) {
			continue
		}
		out = append(out, r.clone())
	}
	if q.OrderBy != "" {
		col := q.OrderBy
		sort.SliceStable(out, func(i, j int) bool {
			c := out[i][col].compare(out[j][col])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	} else {
		// Deterministic order even without OrderBy: primary key or
		// insertion via the row's own sort.
		sort.SliceStable(out, func(i, j int) bool {
			return rowLess(out[i], out[j], t.schema)
		})
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

func rowLess(a, b Row, s Schema) bool {
	if s.Key != "" {
		return a[s.Key].compare(b[s.Key]) < 0
	}
	for _, c := range s.Columns {
		if cmp := a[c.Name].compare(b[c.Name]); cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

// Update modifies matching rows, returning the count.
func (db *DB) Update(tableName string, where []Cond, set Row) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	for col, v := range set {
		want, ok := t.colType[col]
		if !ok {
			return 0, fmt.Errorf("reldb: unknown column %q", col)
		}
		if v.Type != want {
			return 0, fmt.Errorf("reldb: column %q wants %s, got %s", col, want, v.Type)
		}
		if col == t.schema.Key {
			return 0, fmt.Errorf("reldb: cannot update key column %q", col)
		}
	}
	n := 0
	for id, r := range t.rows {
		if !matchRow(r, where) {
			continue
		}
		for col, v := range set {
			if byVal, ok := t.idx[col]; ok {
				old := r[col].key()
				delete(byVal[old], id)
				nk := v.key()
				if byVal[nk] == nil {
					byVal[nk] = make(map[int64]bool)
				}
				byVal[nk][id] = true
			}
			r[col] = v
		}
		n++
	}
	return n, nil
}

// Delete removes matching rows, returning the count.
func (db *DB) Delete(tableName string, where []Cond) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	n := 0
	for id, r := range t.rows {
		if !matchRow(r, where) {
			continue
		}
		if t.schema.Key != "" {
			delete(t.pk, r[t.schema.Key].key())
		}
		for col, byVal := range t.idx {
			delete(byVal[r[col].key()], id)
		}
		delete(t.rows, id)
		n++
	}
	return n, nil
}

// Count returns the number of rows in a table.
func (db *DB) Count(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	return len(t.rows), nil
}
