package repro

import (
	"io"
	"net/http/httptest"
	"testing"
	"testing/fstest"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/namesvc"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/webfs"
)

// TestNameDrivenSharing exercises the paper's common case (section
// 4.4): authorization information is collected in the course of
// resolving names, so proofs build incrementally with shallow graph
// traversals. Alice publishes her file server under the name
// alice·"files"; Bob knows only Alice's key and the name; resolution
// yields both the service and the delegation chain.
func TestNameDrivenSharing(t *testing.T) {
	aliceKey := sfkey.FromSeed([]byte("int-alice"))
	serverKey := sfkey.FromSeed([]byte("int-server"))
	bobKey := sfkey.FromSeed([]byte("int-bob"))
	alice := principal.KeyOf(aliceKey.Public())
	serverHash := principal.HashOfKey(serverKey.Public())
	bob := principal.KeyOf(bobKey.Public())

	// The running service, controlled by the server key's hash.
	srv := webfs.New(serverHash, "alice-files", fstest.MapFS{
		"pub/doc.txt": {Data: []byte("named and shared")},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Alice's namespace binds "files" to the server principal, and
	// the server's owner delegated control of /pub/ to Alice.
	nameCert, err := namesvc.BindNameTTL(aliceKey, "files", serverHash, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ownerToAlice, err := webfs.ShareSubtree(serverKey, serverHash, alice, "alice-files", "/pub/", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Alice delegates onward to Bob.
	aliceToBob, err := cert.Delegate(aliceKey, bob, alice,
		httpauth.SubtreeTag([]string{"GET"}, "alice-files", "/pub/"), core.Until(time.Now().Add(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}

	// Bob resolves alice·"files" to discover the service principal,
	// digesting the certificates he collects along the way.
	target, steps, err := namesvc.Resolve(alice, []string{"files"}, []*cert.Cert{nameCert})
	if err != nil {
		t.Fatal(err)
	}
	if !principal.Equal(target, serverHash) {
		t.Fatalf("resolved %s, want %s", target, serverHash)
	}
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(bobKey))
	for _, s := range steps {
		pv.AddProof(s)
	}
	pv.AddProof(ownerToAlice)
	pv.AddProof(aliceToBob)

	// Bob reads the page through the standard challenge flow; the
	// proof runs bob -> alice -> H(K_server).
	client := httpauth.NewClient(pv, bob)
	resp, err := client.Get(ts.URL + "/pub/doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "named and shared" {
		t.Fatalf("body = %q", body)
	}
}

// TestRevocationPropagatesEndToEnd revokes the middle link of a chain
// and checks the server refuses subsequent requests (section 4.1).
func TestRevocationPropagatesEndToEnd(t *testing.T) {
	serverKey := sfkey.FromSeed([]byte("rev-server"))
	userKey := sfkey.FromSeed([]byte("rev-user"))
	serverHash := principal.HashOfKey(serverKey.Public())
	user := principal.KeyOf(userKey.Public())

	srv := webfs.New(serverHash, "files", fstest.MapFS{
		"pub/a": {Data: []byte("x")},
	})
	store := cert.NewRevocationStore()
	srv.Protected().Revoked = store.Checker(core.NewVerifyContext())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	share, err := webfs.ShareSubtree(serverKey, serverHash, user, "files", "/pub/", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	pv.AddProof(share)
	client := httpauth.NewClient(pv, user)

	resp, err := client.Get(ts.URL + "/pub/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The owner revokes the delegation; new requests must fail even
	// though the certificate itself is unexpired. (The client gets a
	// 403 back when its freshly signed request is refused.)
	if err := store.Add(cert.NewRevocationList(serverKey, core.Forever, share.Hash())); err != nil {
		t.Fatal(err)
	}
	resp2, err := client.Get(ts.URL + "/pub/a")
	if err == nil {
		defer resp2.Body.Close()
		if resp2.StatusCode == 200 {
			t.Fatal("revoked delegation still authorized")
		}
	}
}
