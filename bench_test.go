// Package repro's root benchmarks regenerate the paper's evaluation
// through testing.B: one benchmark group per table and figure of
// section 7, plus the ablations. Run with
//
//	go test -bench=. -benchmem
//
// and compare against the paper values recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// --- Figure 6: RMI ----------------------------------------------------

func BenchmarkFig6_BasicRMI(b *testing.B)   { benchFigRow(b, "fig6", "basic") }
func BenchmarkFig6_RMIPlusSSH(b *testing.B) { benchFigRow(b, "fig6", "+ssh") }
func BenchmarkFig6_RMIPlusSf(b *testing.B)  { benchFigRow(b, "fig6", "+Snowflake") }

// --- Figure 7: HTTP ---------------------------------------------------

func BenchmarkFig7_MinimalHTTP(b *testing.B) { benchFigRow(b, "fig7", "minimal (C)") }
func BenchmarkFig7_StdHTTP(b *testing.B)     { benchFigRow(b, "fig7", "net/http (Java)") }
func BenchmarkFig7_Snowflake(b *testing.B)   { benchFigRow(b, "fig7", "Snowflake") }

// --- Figure 8: SSL vs Snowflake ----------------------------------------

func BenchmarkFig8_SfIdent(b *testing.B)       { benchFig8Row(b, "Sf client auth", "ident") }
func BenchmarkFig8_SfMAC(b *testing.B)         { benchFig8Row(b, "Sf client auth", "MAC") }
func BenchmarkFig8_SfSign(b *testing.B)        { benchFig8Row(b, "Sf client auth", "sign") }
func BenchmarkFig8_SSLRequestMin(b *testing.B) { benchFig8Row(b, "SSL request", "minimal") }
func BenchmarkFig8_SSLNewSessMin(b *testing.B) { benchFig8Row(b, "SSL new sess.", "minimal") }
func BenchmarkFig8_DocCacheVerify(b *testing.B) {
	benchFig8Row(b, "Sf server auth verify", "cache")
}
func BenchmarkFig8_DocSignVerify(b *testing.B) {
	benchFig8Row(b, "Sf server auth verify", "sign")
}

// --- Table 1 and setup ---------------------------------------------------

func BenchmarkTable1_Breakdown(b *testing.B) {
	opts := bench.Options{Runs: 2, Iters: b.N/2 + 1, MaxRetries: 0}
	b.ResetTimer()
	fig, err := bench.Table1(opts)
	if err != nil {
		b.Fatal(err)
	}
	reportRows(b, fig)
}

func BenchmarkSetup_Costs(b *testing.B) {
	opts := bench.Options{Runs: 1, Iters: min(b.N, 10), MaxRetries: 0}
	b.ResetTimer()
	fig, err := bench.Setup(opts)
	if err != nil {
		b.Fatal(err)
	}
	reportRows(b, fig)
}

// --- ablations ------------------------------------------------------------

func BenchmarkAblate_Shortcuts(b *testing.B) {
	fig, err := bench.AblateShortcuts(scaled(b), 8)
	if err != nil {
		b.Fatal(err)
	}
	reportRows(b, fig)
}

func BenchmarkAblate_Reverify(b *testing.B) {
	fig, err := bench.AblateReverify(scaled(b))
	if err != nil {
		b.Fatal(err)
	}
	reportRows(b, fig)
}

func BenchmarkAblate_LocalChannel(b *testing.B) {
	fig, err := bench.AblateLocalChannel(scaled(b))
	if err != nil {
		b.Fatal(err)
	}
	reportRows(b, fig)
}

// --- micro-benchmarks on the core data structures ---------------------------

func BenchmarkMicro_SexpParse2KB(b *testing.B) {
	proof := benchProof(b)
	wire := proof.Sexp().Transport()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sexp.ParseOne(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_ProofDecode(b *testing.B) {
	proof := benchProof(b)
	e := proof.Sexp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProofFromSexp(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_ProofVerifyFresh(b *testing.B) {
	proof := benchProof(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proof.Verify(core.NewVerifyContext()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_ProofVerifyCached(b *testing.B) {
	proof := benchProof(b)
	ctx := core.NewVerifyContext()
	if err := proof.Verify(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proof.Verify(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_TagIntersect(b *testing.B) {
	t1 := tag.MustParse(`(tag (web (method (* set GET HEAD)) (service "files") (* prefix "/pub/")))`)
	t2 := tag.MustParse(`(tag (web (method GET) (service "files") (* prefix "/pub/docs/")))`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tag.Intersect(t1, t2); !ok {
			b.Fatal("empty")
		}
	}
}

func BenchmarkMicro_TagCovers(b *testing.B) {
	grant := tag.MustParse(`(tag (web (method GET) (service "files") (* prefix "/pub/")))`)
	req := tag.MustParse(`(tag (web (method GET) (service "files") "/pub/a/b/c"))`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tag.Covers(grant, req) {
			b.Fatal("uncovered")
		}
	}
}

func BenchmarkMicro_CertSign(b *testing.B) {
	priv := sfkey.FromSeed([]byte("bench-sign"))
	self := principal.KeyOf(priv.Public())
	sub := principal.KeyOf(sfkey.FromSeed([]byte("bench-sub")).Public())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cert.Delegate(priv, sub, self, tag.All(), core.Forever); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_ProverFindShortcut(b *testing.B) {
	pv, subj, iss := benchChain(b, 8, false)
	now := time.Now()
	if _, err := pv.FindProof(subj, iss, tag.All(), now); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pv.FindProof(subj, iss, tag.All(), now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_ProverFindNoShortcut(b *testing.B) {
	pv, subj, iss := benchChain(b, 8, true)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pv.FindProof(subj, iss, tag.All(), now); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers -----------------------------------------------------------------

// benchFigRow runs an entire figure once at a scale derived from b.N
// and reports the row's per-op time as the benchmark result.
func benchFigRow(b *testing.B, fig, row string) {
	b.Helper()
	opts := scaled(b)
	var f *bench.Figure
	var err error
	switch fig {
	case "fig6":
		f, err = bench.Fig6(opts)
	case "fig7":
		f, err = bench.Fig7(opts)
	default:
		b.Fatalf("unknown figure %q", fig)
	}
	if err != nil {
		b.Fatal(err)
	}
	reportRow(b, f, "", row)
}

func benchFig8Row(b *testing.B, group, row string) {
	b.Helper()
	f, err := bench.Fig8(scaled(b))
	if err != nil {
		b.Fatal(err)
	}
	reportRow(b, f, group, row)
}

func scaled(b *testing.B) bench.Options {
	iters := b.N
	if iters > 50 {
		iters = 50
	}
	if iters < 3 {
		iters = 3
	}
	return bench.Options{Runs: 2, Iters: iters, MaxRetries: 0}
}

func reportRow(b *testing.B, f *bench.Figure, group, row string) {
	b.Helper()
	for _, r := range f.Rows {
		if r.Name == row && (group == "" || r.Group == group) {
			b.ReportMetric(r.MeasuredMs, "ms/op")
			if r.PaperMs > 0 {
				b.ReportMetric(r.PaperMs, "paper-ms")
			}
			return
		}
	}
	b.Fatalf("row %s/%s not found in %s", group, row, f.ID)
}

func reportRows(b *testing.B, f *bench.Figure) {
	b.Helper()
	b.Log("\n" + f.Render())
	if len(f.Rows) > 0 {
		b.ReportMetric(f.Rows[0].MeasuredMs, "ms/op")
	}
}

func benchProof(b *testing.B) core.Proof {
	b.Helper()
	owner := sfkey.FromSeed([]byte("bp-owner"))
	alice := sfkey.FromSeed([]byte("bp-alice"))
	ownerP := principal.KeyOf(owner.Public())
	aliceP := principal.KeyOf(alice.Public())
	chP := principal.ChannelOf(principal.ChannelSecure, []byte("bp-ch"))
	c1, err := cert.Delegate(owner, aliceP, ownerP,
		tag.MustParse(`(tag (db (owner "alice")))`), core.Forever)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := cert.Delegate(alice, chP, aliceP,
		tag.MustParse(`(tag (db (owner "alice") select))`), core.Forever)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.NewTransitivity(c2, c1)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchChain(b *testing.B, n int, disableShortcuts bool) (*prover.Prover, principal.Principal, principal.Principal) {
	b.Helper()
	pv := prover.New()
	pv.DisableShortcuts = disableShortcuts
	keys := make([]*sfkey.PrivateKey, n+1)
	for i := range keys {
		keys[i] = sfkey.FromSeed([]byte(fmt.Sprintf("bc-%d", i)))
	}
	for i := 0; i < n; i++ {
		c, err := cert.Delegate(keys[i],
			principal.KeyOf(keys[i+1].Public()),
			principal.KeyOf(keys[i].Public()),
			tag.All(), core.Forever)
		if err != nil {
			b.Fatal(err)
		}
		pv.AddProof(c)
	}
	return pv, principal.KeyOf(keys[n].Public()), principal.KeyOf(keys[0].Public())
}

// silence unused-import pressure for helpers used conditionally.
var _ = io.Discard
var _ = http.DefaultClient
