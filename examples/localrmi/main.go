// Localrmi: the colocated configuration of paper section 5.2 — a
// protected service and its client in the same process, where the
// trusted host runtime vouches for channel endpoints and the fast
// path carries no encryption, only serialization. The authorization
// structure (delegation, proof, checkAuth) is identical to the
// network case; only the hop-by-hop mechanism changed.
//
// Run: go run ./examples/localrmi
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/local"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Counter is a tiny protected service.
type Counter struct{ n int }

// BumpArgs selects the increment.
type BumpArgs struct{ By int }

// BumpReply returns the new value.
type BumpReply struct{ Value int }

// Bump increments the counter.
func (c *Counter) Bump(args BumpArgs, reply *BumpReply) error {
	c.n += args.By
	reply.Value = c.n
	return nil
}

func main() {
	host := local.NewHost()

	// Server side: a protected object controlled by the server key.
	serverKey, err := sfkey.Generate()
	check(err)
	issuer := principal.KeyOf(serverKey.Public())
	srv := rmi.NewServer()
	check(srv.Register("counter", &Counter{}, issuer, nil))
	lis, err := host.Listen("counter-svc", serverKey.Public())
	check(err)
	defer lis.Close()
	go srv.Serve(lis)

	// Client side, same process: a user key plus a channel key the
	// host vouches for.
	userKey, err := sfkey.Generate()
	check(err)
	chanKey, err := sfkey.Generate()
	check(err)
	user := principal.KeyOf(userKey.Public())
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	grant, err := cert.Delegate(serverKey, user, issuer, rmi.ObjectTag("counter"), core.Forever)
	check(err)
	pv.AddProof(grant)

	client, err := rmi.Dial(local.Dialer{Host: host, Key: chanKey.Public()}, "counter-svc", pv)
	check(err)
	defer client.Close()

	start := time.Now()
	var reply BumpReply
	for i := 0; i < 5; i++ {
		check(client.Call("counter", "Bump", BumpArgs{By: i + 1}, &reply))
		fmt.Printf("bump %d -> %d\n", i+1, reply.Value)
	}
	fmt.Printf("5 authorized calls over the local channel in %v (no encryption on the path)\n",
		time.Since(start).Round(time.Microsecond))

	// Authority is still enforced: a stranger in the same process is
	// refused by the same checkAuth.
	strangerKey, err := sfkey.Generate()
	check(err)
	spv := prover.New()
	spv.AddClosure(prover.NewKeyClosure(strangerKey))
	sc, err := rmi.Dial(local.Dialer{Host: host, Key: strangerKey.Public()}, "counter-svc", spv)
	check(err)
	defer sc.Close()
	if err := sc.Call("counter", "Bump", BumpArgs{By: 100}, &reply); err != nil {
		fmt.Println("stranger denied as expected")
	}

	// Restriction still narrows: a read-only style grant cannot bump.
	ro, err := cert.Delegate(serverKey, principal.KeyOf(strangerKey.Public()), issuer,
		tag.ListOf(tag.Literal("rmi"), tag.ListOf(tag.Literal("object"), tag.Literal("other"))),
		core.Forever)
	check(err)
	spv.AddProof(ro)
	if err := sc.Call("counter", "Bump", BumpArgs{By: 100}, &reply); err != nil {
		fmt.Println("out-of-scope grant denied as expected")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
