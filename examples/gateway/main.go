// Gateway demo: the full section 6.3 configuration crossing all four
// boundaries — an HTTP client, a quoting gateway, and an RMI email
// database, each holding distinct keys, with the database making the
// final access-control decision on a proof that names everyone
// involved.
//
// Run: go run ./examples/gateway
package main

import (
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/gateway"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
)

func main() {
	// --- The database server (one administrative domain) -----------
	dbKey, err := sfkey.Generate()
	check(err)
	dbIssuer := principal.KeyOf(dbKey.Public())
	svc, err := emaildb.NewService()
	check(err)
	for i, m := range []emaildb.Message{
		{Owner: "alice", Folder: "inbox", From: "bob@x", To: "alice", Subject: "lunch?", Date: time.Now().Add(-time.Hour)},
		{Owner: "alice", Folder: "inbox", From: "carol@y", To: "alice", Subject: "budget", Date: time.Now()},
		{Owner: "bob", Folder: "inbox", From: "eve@z", To: "bob", Subject: "private to bob", Date: time.Now()},
	} {
		var r emaildb.InsertReply
		check(svc.Insert(emaildb.InsertArgs{Msg: m}, &r))
		_ = i
	}
	dbSrv := rmi.NewServer()
	check(emaildb.Register(dbSrv, svc, dbIssuer))
	lis, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: dbKey})
	check(err)
	defer lis.Close()
	go dbSrv.Serve(lis)
	fmt.Println("database:", lis.Addr(), "issuer", dbIssuer)

	// --- The gateway (a different party) -----------------------------
	gwKey, err := sfkey.Generate()
	check(err)
	gpv := gateway.NewProver(gwKey)
	chanID, err := secure.NewIdentity()
	check(err)
	gpv.AddClosure(prover.NewKeyClosure(chanID.Priv))
	dbClient, err := rmi.Dial(secure.Dialer{ID: chanID}, lis.Addr().String(), gpv)
	check(err)
	defer dbClient.Close()
	gw := gateway.New(gwKey, dbClient, dbIssuer, gpv)
	gwHTTP := httptest.NewServer(gw)
	defer gwHTTP.Close()
	fmt.Println("gateway: ", gwHTTP.URL, "key", gwKey.Public().Fingerprint())

	// --- Alice (a third domain) --------------------------------------
	aliceKey, err := sfkey.Generate()
	check(err)
	alice := principal.KeyOf(aliceKey.Public())
	// The database owner delegated alice's mailbox to her key.
	grant, err := cert.Delegate(dbKey, alice, dbIssuer, emaildb.OwnerTag("alice"), core.Forever)
	check(err)
	apv := prover.New()
	apv.AddClosure(prover.NewKeyClosure(aliceKey))
	apv.AddProof(grant)
	client := httpauth.NewClient(apv, alice)

	// Alice reads her mailbox through the gateway: HTTP in front, the
	// gateway quoting her over RMI behind, the database deciding.
	resp, err := client.Get(gwHTTP.URL + "/mail?owner=alice&folder=inbox")
	check(err)
	body, err := io.ReadAll(resp.Body)
	check(err)
	resp.Body.Close()
	fmt.Println("\nalice's mailbox via the gateway:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.Contains(line, "<td>") {
			fmt.Println(" ", line)
		}
	}

	// The gateway cannot be tricked into crossing mailboxes: it quotes
	// alice, and the database refuses her quoted authority over bob.
	resp2, err := client.Get(gwHTTP.URL + "/mail?owner=bob")
	if err != nil {
		fmt.Println("\nalice->bob denied (client could not build a proof):", trim(err.Error()))
	} else {
		defer resp2.Body.Close()
		fmt.Println("\nalice->bob response status:", resp2.StatusCode, "(403 expected)")
	}

	st := gw.Stats()
	fmt.Printf("\ngateway stats: %+v\n", st)
	fmt.Println("four boundaries crossed: administrative, network scale (secure channel), abstraction (rows->mailbox), protocol (HTTP->RMI)")
}

func trim(s string) string {
	if len(s) > 100 {
		return s[:100] + "..."
	}
	return s
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
