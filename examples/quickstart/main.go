// Quickstart: the Snowflake logic of authority end to end, in one
// process — keys, restricted delegation, proof discovery, and
// verification, culminating in the structured proof of the paper's
// Figure 1.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/namesvc"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func main() {
	// 1. Identities. Alice owns a resource; Bob wants to use it.
	aliceKey, err := sfkey.Generate()
	check(err)
	bobKey, err := sfkey.Generate()
	check(err)
	alice := principal.KeyOf(aliceKey.Public())
	bob := principal.KeyOf(bobKey.Public())
	fmt.Println("alice:", alice)
	fmt.Println("bob:  ", bob)

	// 2. Restricted delegation: Alice lets Bob read (not write) files
	// under /project/, for a day. "Speaks for" captures delegation;
	// "regarding" captures restriction (paper section 3).
	grant := tag.MustParse(`(tag (fs read (* prefix "/project/")))`)
	d, err := cert.Delegate(aliceKey, bob, alice, grant,
		core.Until(time.Now().Add(24*time.Hour)))
	check(err)
	fmt.Println("\ndelegation:", d.Conclusion())

	// 3. Bob's Prover collects the delegation and can complete proofs
	// by minting the last hop from his own key (section 4.4).
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(bobKey))
	pv.AddProof(d)

	// A request arrives over some channel whose key is chKey; Bob
	// delegates to the channel and the Prover assembles
	// channel => bob => alice.
	chKey, err := sfkey.Generate()
	check(err)
	channel := principal.KeyOf(chKey.Public())
	request := tag.MustParse(`(tag (fs read "/project/plan.txt"))`)
	proof, err := pv.FindProof(channel, alice, request, time.Now())
	check(err)
	fmt.Println("\nproof found:", proof.Conclusion())

	// 4. Alice's server verifies the proof and authorizes the request.
	ctx := core.NewVerifyContext()
	check(core.Authorize(ctx, proof, channel, alice, request))
	fmt.Println("request AUTHORIZED:", request)

	// Out-of-scope requests fail even with the same proof.
	write := tag.MustParse(`(tag (fs write "/project/plan.txt"))`)
	if err := core.Authorize(ctx, proof, channel, alice, write); err != nil {
		fmt.Println("write request denied as expected")
	}

	// 5. Figure 1: the structured proof that document D is the object
	// client C associates with name N.
	figure1(aliceKey, alice)
}

// figure1 rebuilds the paper's Figure 1 proof tree and verifies it.
func figure1(clientKey *sfkey.PrivateKey, client principal.Principal) {
	serverKey, err := sfkey.Generate()
	check(err)
	ks := principal.KeyOf(serverKey.Public())
	doc := []byte("the document D")
	hd := principal.HashOfBytes(doc)
	hkc := principal.HashOfKey(clientKey.Public())

	// hash-identity lifted through the name: HKC·N => KC·N.
	nameStep, err := core.NewNameMono(core.NewHashIdent(clientKey.Public()), "N")
	check(err)
	// The client's binding KS => HKC·N (a name certificate).
	bind, err := cert.Sign(clientKey, core.SpeaksFor{
		Subject: ks, Issuer: principal.NameOf(hkc, "N"), Tag: tag.All(),
	})
	check(err)
	mid, err := core.NewTransitivity(bind, nameStep)
	check(err)
	// The server's short-lived signature over the document: HD => KS.
	docCert, err := cert.Sign(serverKey, core.SpeaksFor{
		Subject: hd, Issuer: ks, Tag: tag.All(),
		Validity: core.Until(time.Now().Add(time.Hour)),
	})
	check(err)
	top, err := core.NewTransitivity(docCert, mid)
	check(err)

	ctx := core.NewVerifyContext()
	check(top.Verify(ctx))
	fmt.Println("\nFigure 1 verified:", top.Conclusion())
	fmt.Println("reusable lemmas in the proof:", len(core.Lemmas(top)))

	// Name resolution (section 4.4): proofs are usually built
	// incrementally while resolving names.
	other, err := sfkey.Generate()
	check(err)
	bound, _, err := namesvc.Resolve(client, nil, nil)
	_ = bound
	_ = other
	if err == nil {
		fmt.Println("name service available for richer examples (see examples/webshare)")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
