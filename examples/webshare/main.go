// Webshare: sharing a protected web page across an administrative
// boundary (paper sections 2.1 and 6.1). Alice runs a protected file
// server controlled by the hash of her key; she hands Bob a
// delegation for one subtree; Bob's authorizing client follows the
// Snowflake HTTP challenge protocol and reads the page. No account
// was created, no password shared, and the server never heard of Bob.
//
// Run: go run ./examples/webshare
package main

import (
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"testing/fstest"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
	"repro/internal/webfs"
)

func main() {
	// Alice's domain: a file server controlled by H(K_alice).
	aliceKey, err := sfkey.Generate()
	check(err)
	ownerHash := principal.HashOfKey(aliceKey.Public())
	fsys := fstest.MapFS{
		"pub/paper.txt": {Data: []byte("end-to-end authorization, 2000")},
		"pub/notes.txt": {Data: []byte("snowflake design notes")},
		"private/diary": {Data: []byte("alice's private diary")},
	}
	server := webfs.New(ownerHash, "alice-files", fsys)
	ts := httptest.NewServer(server)
	defer ts.Close()
	fmt.Println("alice's server:", ts.URL, "controlled by", ownerHash)

	// Bob, in a different administrative domain, has only a key pair.
	bobKey, err := sfkey.Generate()
	check(err)
	bob := principal.KeyOf(bobKey.Public())

	// Alice delegates /pub/ to Bob for an hour — the "delegate" link
	// of the proxy UI (section 5.3.5) produces exactly this object.
	share, err := webfs.ShareSubtree(aliceKey, ownerHash, bob, "alice-files", "/pub/", time.Hour)
	check(err)
	fmt.Println("delegation issued:", share.Conclusion())

	// Bob imports the delegation into his prover and reads the page.
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(bobKey))
	pv.AddProof(share)
	client := httpauth.NewClient(pv, bob)

	resp, err := client.Get(ts.URL + "/pub/paper.txt")
	check(err)
	body, err := io.ReadAll(resp.Body)
	check(err)
	resp.Body.Close()
	fmt.Printf("bob read /pub/paper.txt: %q\n", body)

	// The restriction is enforced end to end: the same proof machinery
	// refuses the private subtree.
	if _, err := client.Get(ts.URL + "/private/diary"); err != nil {
		fmt.Println("bob denied /private/diary as expected")
	}

	// Bob re-delegates a single file to Carol without consulting
	// Alice; the chain intersects the restrictions. Bob signs over his
	// key principal so the proof chains carol => bob => H(K_alice).
	carolKey, err := sfkey.Generate()
	check(err)
	carol := principal.KeyOf(carolKey.Public())
	fileTag := tag.ListOf(
		tag.Literal("web"),
		tag.ListOf(tag.Literal("method"), tag.Literal("GET")),
		tag.ListOf(tag.Literal("service"), tag.Literal("alice-files")),
		tag.ListOf(tag.Literal("resourcePath"), tag.Literal("/pub/notes.txt")),
	)
	carolGrant, err := cert.Delegate(bobKey, carol, bob, fileTag, core.Until(time.Now().Add(time.Hour)))
	check(err)
	cpv := prover.New()
	cpv.AddClosure(prover.NewKeyClosure(carolKey))
	cpv.AddProof(share)
	cpv.AddProof(carolGrant)
	cclient := httpauth.NewClient(cpv, carol)
	resp, err = cclient.Get(ts.URL + "/pub/notes.txt")
	if err != nil {
		fmt.Println("carol denied (chain incomplete):", err)
	} else {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("carol read via two-step chain: %q\n", b)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
