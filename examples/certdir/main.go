// Certdir: end-to-end authorization across machines through the
// certificate directory. A gateway on "host B" publishes a delegation
// chain to a directory service; a user key on "host A" — whose prover
// has never seen any of those delegations — discovers the chain over
// HTTP, assembles the proof, and the gateway verifies it.
//
// Run: go run ./examples/certdir
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func main() {
	now := time.Now()
	valid := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	files := tag.Prefix("gateway/files")

	// 0. A directory daemon (what cmd/sf-certd runs), here in-process
	// on a loopback port.
	store := certdir.NewStore(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, certdir.NewService(store))
	dirURL := "http://" + ln.Addr().String()
	fmt.Printf("directory listening at %s\n\n", dirURL)

	// 1. Host B: the gateway's organization. Authority flows gateway
	// -> department -> team -> user, and every delegation is published
	// to the directory instead of being hand-carried.
	gateway := genKey("gateway")
	dept := genKey("department")
	team := genKey("team")
	user := genKey("user")

	pub := certdir.NewClient(dirURL)
	for _, d := range []struct {
		from *sfkey.PrivateKey
		to   principal.Principal
		desc string
	}{
		{gateway.priv, dept.prin, "gateway delegates files to department"},
		{dept.priv, team.prin, "department delegates files to team"},
		{team.priv, user.prin, "team delegates files to user"},
	} {
		c, err := cert.Delegate(d.from, d.to, principal.KeyOf(d.from.Public()), files, valid)
		check(err)
		check(pub.Publish(c))
		fmt.Printf("published: %s\n", d.desc)
	}

	// 2. Host A: the user's prover. Its local delegation graph is
	// empty — everything it needs lives in the directory.
	p := prover.New()
	p.AddRemote(certdir.NewClient(dirURL))
	fmt.Printf("\nprover starts with %d local edges\n", p.EdgeCount())

	proof, err := p.FindProof(user.prin, gateway.prin, files, now)
	check(err)
	st := p.Stats()
	fmt.Printf("proof discovered: %s\n", proof.Conclusion())
	fmt.Printf("  %d directory queries, %d certificates fetched\n",
		st.RemoteQueries, st.RemoteCerts)

	// 3. The gateway verifies the proof; the directory is pure
	// mechanism and appears nowhere in the trust computation.
	ctx := core.NewVerifyContext()
	ctx.Now = now
	check(core.Authorize(ctx, proof, user.prin, gateway.prin, files))
	fmt.Println("gateway verdict: authorized")

	// 4. Re-proving stays off the network: the fetched chain is now
	// part of the local graph.
	before := p.Stats().RemoteQueries
	_, err = p.FindProof(user.prin, gateway.prin, files, now.Add(time.Second))
	check(err)
	fmt.Printf("re-prove used %d directory queries (chain is local now)\n",
		p.Stats().RemoteQueries-before)
}

type identity struct {
	priv *sfkey.PrivateKey
	prin principal.Principal
}

func genKey(name string) identity {
	priv, err := sfkey.Generate()
	check(err)
	id := identity{priv: priv, prin: principal.KeyOf(priv.Public())}
	fmt.Printf("key %-12s %s\n", name, id.prin)
	return id
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
