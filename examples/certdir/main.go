// Certdir: end-to-end authorization across machines through
// replicated, durable certificate directories. A gateway on "host B"
// publishes a delegation chain to its own domain's directory A; gossip
// replication makes the chain visible at domain B's directory; a user
// key on "host A" — whose prover has never seen any of those
// delegations and only knows directory B — discovers the chain over
// HTTP, assembles the proof, and the gateway verifies it. Directory A
// is then restarted and recovers its contents from its write-ahead
// log, pulling anything it missed while down from its peer. Finally
// the team revokes the user's delegation LIVE — a CRL installed
// through a directory admin endpoint, no restarts — and within one
// gossip exchange the revocation has evicted at both directories and
// the user's prover, subscribed to its directory's invalidation
// stream, can no longer prove the chain.
//
// Run: go run ./examples/certdir
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func main() {
	now := time.Now()
	valid := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	files := tag.Prefix("gateway/files")

	// 0. Two directory daemons (what cmd/sf-certd runs), one per
	// administrative domain, here in-process on loopback ports.
	// Directory A is durable: its write-ahead log lives in dataDir.
	dataDir, err := os.MkdirTemp("", "certdir-demo-")
	check(err)
	defer os.RemoveAll(dataDir)

	storeA, _, err := certdir.OpenDurable(dataDir, 0, certdir.SyncAlways, now)
	check(err)
	storeB := certdir.NewStore(0)

	svcA, urlA, stopA := serve(storeA)
	svcB, urlB, stopB := serve(storeB)
	defer stopB()

	// Each domain's directory gossips with the other: pushes fan out
	// on publish, anti-entropy rounds repair anything missed, and CRLs
	// replicate alongside the certificates they void.
	repA := certdir.NewReplicator(storeA, []*certdir.Client{certdir.NewClient(urlB)})
	repA.Revocations = svcA.Revocations
	repB := certdir.NewReplicator(storeB, []*certdir.Client{certdir.NewClient(urlA)})
	repB.Revocations = svcB.Revocations
	repA.Start()
	repB.Start()
	defer repB.Stop()
	svcA.Replicator = repA
	svcB.Replicator = repB
	fmt.Printf("directory A (domain alpha, durable) at %s\n", urlA)
	fmt.Printf("directory B (domain beta)           at %s\n\n", urlB)

	// 1. Domain alpha: the gateway's organization. Authority flows
	// gateway -> department -> team -> user, and every delegation is
	// published to the organization's OWN directory only.
	gateway := genKey("gateway")
	dept := genKey("department")
	team := genKey("team")
	user := genKey("user")

	pub := certdir.NewClient(urlA)
	var chain []*cert.Cert
	for _, d := range []struct {
		from *sfkey.PrivateKey
		to   principal.Principal
		desc string
	}{
		{gateway.priv, dept.prin, "gateway delegates files to department"},
		{dept.priv, team.prin, "department delegates files to team"},
		{team.priv, user.prin, "team delegates files to user"},
	} {
		c, err := cert.Delegate(d.from, d.to, principal.KeyOf(d.from.Public()), files, valid)
		check(err)
		check(pub.Publish(c))
		chain = append(chain, c)
		fmt.Printf("published to A: %s\n", d.desc)
	}

	// 2. Push replication: within one gossip exchange the chain is in
	// directory B too, server-side — no client had to merge anything.
	waitFor("replication A -> B", func() bool { return storeB.Len() == 3 })
	fmt.Printf("\ndirectory B now stores %d certs (pushed by A)\n", storeB.Len())

	// 3. Domain beta: the user's prover. Its local delegation graph is
	// empty and it has never heard of directory A. Besides querying
	// directory B it subscribes to B's invalidation stream, so
	// certificates B stops vouching for are dropped from the prover's
	// cache instead of lingering until expiry.
	p := prover.New()
	clientB := certdir.NewClient(urlB)
	p.AddRemote(clientB)
	sub := p.Subscribe(clientB, core.SharedProofCache())
	defer sub.Stop()
	fmt.Printf("prover starts with %d local edges, knows only directory B\n", p.EdgeCount())

	proof, err := p.FindProof(user.prin, gateway.prin, files, now)
	check(err)
	st := p.Stats()
	fmt.Printf("proof discovered: %s\n", proof.Conclusion())
	fmt.Printf("  %d directory queries, %d certificates fetched\n",
		st.RemoteQueries, st.RemoteCerts)

	// 4. The gateway verifies the proof; the directories are pure
	// mechanism and appear nowhere in the trust computation.
	ctx := core.NewVerifyContext()
	ctx.Now = now
	check(core.Authorize(ctx, proof, user.prin, gateway.prin, files))
	fmt.Println("gateway verdict: authorized")

	// 5. Crash and restart directory A. While it is down, a fourth
	// delegation lands at B only.
	repA.Stop()
	stopA()
	check(storeA.CloseWAL())
	fmt.Println("\ndirectory A stopped (process gone, WAL on disk)")

	intern := genKey("intern")
	c, err := cert.Delegate(user.priv, intern.prin, user.prin, files, valid)
	check(err)
	check(certdir.NewClient(urlB).Publish(c))
	fmt.Println("published to B while A is down: user delegates files to intern")

	storeA2, rec, err := certdir.OpenDurable(dataDir, 0, certdir.SyncAlways, time.Now())
	check(err)
	fmt.Printf("directory A restarted: %d WAL records replayed, %d certs live again\n",
		rec.Replayed, storeA2.Len())

	// 6. One anti-entropy round pulls what A missed while down.
	repA2 := certdir.NewReplicator(storeA2, []*certdir.Client{certdir.NewClient(urlB)})
	repA2.Revocations = cert.NewRevocationStore()
	pulled, err := repA2.Converge()
	check(err)
	fmt.Printf("anti-entropy round pulled %d cert(s); A now stores %d\n", pulled, storeA2.Len())

	// 7. Live revocation, end to end. The team retracts the user's
	// delegation: a signed CRL installed at directory B's admin
	// endpoint — no daemon restarts, no sweep timers. B verifies the
	// CRL, evicts the delegation immediately (tombstoned against
	// gossip resurrection), bumps the shared proof-cache epoch, and
	// emits an invalidation event; the user's subscribed prover drops
	// its cached chain. Directory A pulls the CRL in its next
	// anti-entropy round and evicts too.
	teamToUser := chain[2]
	check(clientB.PushCRL(cert.NewRevocationList(team.priv, valid, teamToUser.Hash())))
	fmt.Printf("\nCRL installed at B: team revokes 'user speaks for team'\n")
	fmt.Printf("directory B now stores %d certs (revoked delegation evicted)\n", storeB.Len())

	waitFor("prover invalidation via event stream", func() bool {
		_, err := p.FindProof(user.prin, gateway.prin, files, time.Now())
		return err != nil
	})
	st = p.Stats()
	fmt.Printf("prover can no longer prove the chain (%d cached edges invalidated)\n", st.Invalidated)

	before := storeA2.Len()
	_, err = repA2.Converge()
	check(err)
	rst := repA2.Stats()
	fmt.Printf("directory A pulled %d CRL(s) by gossip and now stores %d certs (was %d)\n",
		rst.CRLsPulled, storeA2.Len(), before)
}

// serve exposes a store on a loopback port with the revocation
// endpoints enabled, returning its service, base URL, and a closer.
func serve(st *certdir.Store) (svc *certdir.Service, url string, stop func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	svc = certdir.NewService(st)
	svc.Revocations = cert.NewRevocationStore()
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	return svc, "http://" + ln.Addr().String(), func() { srv.Close() }
}

// waitFor polls cond (push replication is asynchronous) with a
// generous deadline.
func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type identity struct {
	priv *sfkey.PrivateKey
	prin principal.Principal
}

func genKey(name string) identity {
	priv, err := sfkey.Generate()
	check(err)
	id := identity{priv: priv, prin: principal.KeyOf(priv.Public())}
	fmt.Printf("key %-12s %s\n", name, id.prin)
	return id
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
