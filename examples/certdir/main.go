// Certdir: end-to-end authorization across machines through
// replicated, durable certificate directories — with the control
// plane itself guarded by the same speaks-for machinery. Both
// directories enforce an OPERATOR principal: publishes, removals, and
// admin calls must prove "this request speaks for the operator
// regarding (sf-ctl publish|admin)", and the directories' own gossip
// pushes are signed with delegated daemon credentials. A gateway on
// "host B" publishes a delegation chain to its own domain's directory
// A; gossip replication makes the chain visible at domain B's
// directory; a user key on "host A" — whose prover has never seen any
// of those delegations and only knows directory B — discovers the
// chain over HTTP, assembles the proof, and the gateway verifies it.
// Directory A is then restarted and recovers its contents from its
// write-ahead log, pulling anything it missed while down from its
// peer. Finally the team revokes the user's delegation LIVE — a CRL
// installed through directory B's AUTHENTICATED admin endpoint, by a
// team holding an operator-delegated (sf-ctl admin) credential — and
// within one gossip exchange the revocation has evicted at both
// directories and the user's prover, subscribed to its directory's
// invalidation stream, can no longer prove the chain.
//
// Run: go run ./examples/certdir
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func main() {
	now := time.Now()
	valid := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	files := tag.Prefix("gateway/files")

	// 0. The operator of both directory domains, and the daemon/client
	// credentials it mints. Control-plane authority is delegated with
	// ordinary certificates: daemons get both operation classes (their
	// gossip pushes are publishes and CRL installs at the peer), the
	// registrar gets publish only, the team gets admin only.
	operator := genKey("operator")
	dirAKey := genKey("dirA-daemon")
	dirBKey := genKey("dirB-daemon")
	registrar := genKey("registrar")
	mustCred := func(to identity, ops ...string) *cert.Cert {
		c, err := cert.DelegateCtl(operator.priv, to.prin, time.Hour, ops...)
		check(err)
		return c
	}
	credA := mustCred(dirAKey)
	credB := mustCred(dirBKey)
	credPub := mustCred(registrar, cert.CtlPublish)

	// Both directory daemons (what cmd/sf-certd -admin-auth runs), one
	// per administrative domain, here in-process on loopback ports.
	// Directory A is durable: its write-ahead log lives in dataDir.
	dataDir, err := os.MkdirTemp("", "certdir-demo-")
	check(err)
	defer os.RemoveAll(dataDir)

	storeA, _, err := certdir.OpenDurable(dataDir, 0, certdir.SyncAlways, now)
	check(err)
	storeB := certdir.NewStore(0)

	svcA, urlA, stopA := serve(storeA, operator.prin)
	svcB, urlB, stopB := serve(storeB, operator.prin)
	defer stopB()

	// signed builds a client whose mutating requests carry speaks-for
	// proofs minted from key + credential (what -ctl-key/-ctl-cert do).
	signed := func(url string, key *sfkey.PrivateKey, chain ...*cert.Cert) *certdir.Client {
		c := certdir.NewClient(url)
		c.Ctl = httpauth.NewCtlSigner(prover.NewKeyClosure(key), operator.prin, chain...)
		return c
	}

	// Each domain's directory gossips with the other, authenticating
	// its pushes with its daemon credential: pushes fan out on publish,
	// anti-entropy rounds repair anything missed, and CRLs replicate
	// alongside the certificates they void.
	repA := certdir.NewReplicator(storeA, []*certdir.Client{signed(urlB, dirAKey.priv, credA)})
	repA.Revocations = svcA.Revocations
	repB := certdir.NewReplicator(storeB, []*certdir.Client{signed(urlA, dirBKey.priv, credB)})
	repB.Revocations = svcB.Revocations
	repA.Start()
	repB.Start()
	defer repB.Stop()
	svcA.Replicator = repA
	svcB.Replicator = repB
	fmt.Printf("directory A (domain alpha, durable) at %s\n", urlA)
	fmt.Printf("directory B (domain beta)           at %s\n", urlB)
	fmt.Printf("both enforce -admin-auth: callers must speak for the operator\n\n")

	// 0b. The closed control plane, demonstrated: an unauthenticated
	// publish bounces with a 401 challenge before any state changes.
	unsigned := certdir.NewClient(urlA)
	gateway := genKey("gateway")
	dept := genKey("department")
	team := genKey("team")
	user := genKey("user")
	probe, err := cert.Delegate(gateway.priv, dept.prin, gateway.prin, files, valid)
	check(err)
	if err := unsigned.Publish(probe); err != nil {
		fmt.Printf("unauthenticated publish refused: 401 operator proof required\n\n")
	} else {
		log.Fatal("open publish on a guarded directory")
	}

	// 1. Domain alpha: the gateway's organization. Authority flows
	// gateway -> department -> team -> user, and every delegation is
	// published to the organization's OWN directory only — by the
	// registrar, whose publish-only credential the guard accepts.
	pub := signed(urlA, registrar.priv, credPub)
	var chain []*cert.Cert
	for _, d := range []struct {
		from *sfkey.PrivateKey
		to   principal.Principal
		desc string
	}{
		{gateway.priv, dept.prin, "gateway delegates files to department"},
		{dept.priv, team.prin, "department delegates files to team"},
		{team.priv, user.prin, "team delegates files to user"},
	} {
		c, err := cert.Delegate(d.from, d.to, principal.KeyOf(d.from.Public()), files, valid)
		check(err)
		check(pub.Publish(c))
		chain = append(chain, c)
		fmt.Printf("published to A (signed by registrar): %s\n", d.desc)
	}

	// 2. Push replication: within one gossip exchange the chain is in
	// directory B too, server-side — no client had to merge anything.
	// The pushes passed B's guard because A signs them.
	waitFor("replication A -> B", func() bool { return storeB.Len() == 3 })
	fmt.Printf("\ndirectory B now stores %d certs (pushed by A, signed pushes)\n", storeB.Len())

	// 3. Domain beta: the user's prover. Its local delegation graph is
	// empty and it has never heard of directory A. Besides querying
	// directory B it subscribes to B's invalidation stream, so
	// certificates B stops vouching for are dropped from the prover's
	// cache instead of lingering until expiry. Queries and events are
	// read-only: no credential needed.
	p := prover.New()
	clientB := certdir.NewClient(urlB)
	p.AddRemote(clientB)
	sub := p.Subscribe(clientB, core.SharedProofCache())
	defer sub.Stop()
	fmt.Printf("prover starts with %d local edges, knows only directory B\n", p.EdgeCount())

	proof, err := p.FindProof(user.prin, gateway.prin, files, now)
	check(err)
	st := p.Stats()
	fmt.Printf("proof discovered: %s\n", proof.Conclusion())
	fmt.Printf("  %d directory queries, %d certificates fetched\n",
		st.RemoteQueries, st.RemoteCerts)

	// 4. The gateway verifies the proof; the directories are pure
	// mechanism and appear nowhere in the trust computation.
	ctx := core.NewVerifyContext()
	ctx.Now = now
	check(core.Authorize(ctx, proof, user.prin, gateway.prin, files))
	fmt.Println("gateway verdict: authorized")

	// 5. Crash and restart directory A. While it is down, a fourth
	// delegation lands at B only (signed by the registrar, whose
	// credential both domains' guards accept — one operator, one
	// credential system).
	repA.Stop()
	stopA()
	check(storeA.CloseWAL())
	fmt.Println("\ndirectory A stopped (process gone, WAL on disk)")

	intern := genKey("intern")
	c, err := cert.Delegate(user.priv, intern.prin, user.prin, files, valid)
	check(err)
	check(signed(urlB, registrar.priv, credPub).Publish(c))
	fmt.Println("published to B while A is down: user delegates files to intern")

	storeA2, rec, err := certdir.OpenDurable(dataDir, 0, certdir.SyncAlways, time.Now())
	check(err)
	fmt.Printf("directory A restarted: %d WAL records replayed, %d certs live again\n",
		rec.Replayed, storeA2.Len())

	// 6. One anti-entropy round pulls what A missed while down.
	repA2 := certdir.NewReplicator(storeA2, []*certdir.Client{signed(urlB, dirAKey.priv, credA)})
	repA2.Revocations = cert.NewRevocationStore()
	pulled, err := repA2.Converge()
	check(err)
	fmt.Printf("anti-entropy round pulled %d cert(s); A now stores %d\n", pulled, storeA2.Len())

	// 7. Live revocation, end to end — through the AUTHENTICATED admin
	// surface. The team retracts the user's delegation: a signed CRL
	// installed at directory B's admin endpoint by the team, whose
	// (sf-ctl admin) credential the operator delegated. B checks the
	// speaks-for proof (proof cache fast path), verifies the CRL,
	// evicts the delegation immediately (tombstoned against gossip
	// resurrection), bumps the shared proof-cache epoch, and emits an
	// invalidation event; the user's subscribed prover drops its
	// cached chain. Directory A pulls the CRL in its next anti-entropy
	// round and evicts too.
	credAdmin := mustCred(team, cert.CtlAdmin)
	teamAdmin := signed(urlB, team.priv, credAdmin)
	teamToUser := chain[2]
	crl := cert.NewRevocationList(team.priv, valid, teamToUser.Hash())
	if err := certdir.NewClient(urlB).PushCRL(crl); err == nil {
		log.Fatal("unauthenticated CRL install accepted")
	}
	fmt.Printf("\nunauthenticated CRL install refused; retrying with the team's admin credential\n")
	check(teamAdmin.PushCRL(crl))
	fmt.Printf("CRL installed at B (authenticated): team revokes 'user speaks for team'\n")
	fmt.Printf("directory B now stores %d certs (revoked delegation evicted)\n", storeB.Len())

	waitFor("prover invalidation via event stream", func() bool {
		_, err := p.FindProof(user.prin, gateway.prin, files, time.Now())
		return err != nil
	})
	st = p.Stats()
	fmt.Printf("prover can no longer prove the chain (%d cached edges invalidated)\n", st.Invalidated)

	before := storeA2.Len()
	_, err = repA2.Converge()
	check(err)
	rst := repA2.Stats()
	fmt.Printf("directory A pulled %d CRL(s) by gossip and now stores %d certs (was %d)\n",
		rst.CRLsPulled, storeA2.Len(), before)
}

// serve exposes a store on a loopback port with the revocation
// endpoints enabled and the control plane guarded by the operator
// principal (what sf-certd -admin-auth -operator wires), returning
// its service, base URL, and a closer.
func serve(st *certdir.Store, operator principal.Principal) (svc *certdir.Service, url string, stop func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	svc = certdir.NewService(st)
	svc.Revocations = cert.NewRevocationStore()
	svc.Guard = httpauth.NewCtlGuard(operator, svc.Revocations)
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	return svc, "http://" + ln.Addr().String(), func() { srv.Close() }
}

// waitFor polls cond (push replication is asynchronous) with a
// generous deadline.
func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type identity struct {
	priv *sfkey.PrivateKey
	prin principal.Principal
}

func genKey(name string) identity {
	priv, err := sfkey.Generate()
	check(err)
	id := identity{priv: priv, prin: principal.KeyOf(priv.Public())}
	fmt.Printf("key %-12s %s\n", name, id.prin)
	return id
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
