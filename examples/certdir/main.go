// Certdir: end-to-end authorization across machines through
// replicated, durable certificate directories. A gateway on "host B"
// publishes a delegation chain to its own domain's directory A; gossip
// replication makes the chain visible at domain B's directory; a user
// key on "host A" — whose prover has never seen any of those
// delegations and only knows directory B — discovers the chain over
// HTTP, assembles the proof, and the gateway verifies it. Directory A
// is then restarted and recovers its contents from its write-ahead
// log, pulling anything it missed while down from its peer.
//
// Run: go run ./examples/certdir
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func main() {
	now := time.Now()
	valid := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	files := tag.Prefix("gateway/files")

	// 0. Two directory daemons (what cmd/sf-certd runs), one per
	// administrative domain, here in-process on loopback ports.
	// Directory A is durable: its write-ahead log lives in dataDir.
	dataDir, err := os.MkdirTemp("", "certdir-demo-")
	check(err)
	defer os.RemoveAll(dataDir)

	storeA, _, err := certdir.OpenDurable(dataDir, 0, certdir.SyncAlways, now)
	check(err)
	storeB := certdir.NewStore(0)

	urlA, stopA := serve(storeA)
	urlB, stopB := serve(storeB)
	defer stopB()

	// Each domain's directory gossips with the other: pushes fan out
	// on publish, and anti-entropy rounds repair anything missed.
	repA := certdir.NewReplicator(storeA, []*certdir.Client{certdir.NewClient(urlB)})
	repB := certdir.NewReplicator(storeB, []*certdir.Client{certdir.NewClient(urlA)})
	repA.Start()
	repB.Start()
	defer repB.Stop()
	fmt.Printf("directory A (domain alpha, durable) at %s\n", urlA)
	fmt.Printf("directory B (domain beta)           at %s\n\n", urlB)

	// 1. Domain alpha: the gateway's organization. Authority flows
	// gateway -> department -> team -> user, and every delegation is
	// published to the organization's OWN directory only.
	gateway := genKey("gateway")
	dept := genKey("department")
	team := genKey("team")
	user := genKey("user")

	pub := certdir.NewClient(urlA)
	for _, d := range []struct {
		from *sfkey.PrivateKey
		to   principal.Principal
		desc string
	}{
		{gateway.priv, dept.prin, "gateway delegates files to department"},
		{dept.priv, team.prin, "department delegates files to team"},
		{team.priv, user.prin, "team delegates files to user"},
	} {
		c, err := cert.Delegate(d.from, d.to, principal.KeyOf(d.from.Public()), files, valid)
		check(err)
		check(pub.Publish(c))
		fmt.Printf("published to A: %s\n", d.desc)
	}

	// 2. Push replication: within one gossip exchange the chain is in
	// directory B too, server-side — no client had to merge anything.
	waitFor("replication A -> B", func() bool { return storeB.Len() == 3 })
	fmt.Printf("\ndirectory B now stores %d certs (pushed by A)\n", storeB.Len())

	// 3. Domain beta: the user's prover. Its local delegation graph is
	// empty and it has never heard of directory A.
	p := prover.New()
	p.AddRemote(certdir.NewClient(urlB))
	fmt.Printf("prover starts with %d local edges, knows only directory B\n", p.EdgeCount())

	proof, err := p.FindProof(user.prin, gateway.prin, files, now)
	check(err)
	st := p.Stats()
	fmt.Printf("proof discovered: %s\n", proof.Conclusion())
	fmt.Printf("  %d directory queries, %d certificates fetched\n",
		st.RemoteQueries, st.RemoteCerts)

	// 4. The gateway verifies the proof; the directories are pure
	// mechanism and appear nowhere in the trust computation.
	ctx := core.NewVerifyContext()
	ctx.Now = now
	check(core.Authorize(ctx, proof, user.prin, gateway.prin, files))
	fmt.Println("gateway verdict: authorized")

	// 5. Crash and restart directory A. While it is down, a fourth
	// delegation lands at B only.
	repA.Stop()
	stopA()
	check(storeA.CloseWAL())
	fmt.Println("\ndirectory A stopped (process gone, WAL on disk)")

	intern := genKey("intern")
	c, err := cert.Delegate(user.priv, intern.prin, user.prin, files, valid)
	check(err)
	check(certdir.NewClient(urlB).Publish(c))
	fmt.Println("published to B while A is down: user delegates files to intern")

	storeA2, rec, err := certdir.OpenDurable(dataDir, 0, certdir.SyncAlways, time.Now())
	check(err)
	fmt.Printf("directory A restarted: %d WAL records replayed, %d certs live again\n",
		rec.Replayed, storeA2.Len())

	// 6. One anti-entropy round pulls what A missed while down.
	repA2 := certdir.NewReplicator(storeA2, []*certdir.Client{certdir.NewClient(urlB)})
	pulled, err := repA2.Converge()
	check(err)
	fmt.Printf("anti-entropy round pulled %d cert(s); A now stores %d\n", pulled, storeA2.Len())
}

// serve exposes a store on a loopback port, returning its base URL and
// a closer.
func serve(st *certdir.Store) (url string, stop func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: certdir.NewService(st)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }
}

// waitFor polls cond (push replication is asynchronous) with a
// generous deadline.
func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type identity struct {
	priv *sfkey.PrivateKey
	prin principal.Principal
}

func genKey(name string) identity {
	priv, err := sfkey.Generate()
	check(err)
	id := identity{priv: priv, prin: principal.KeyOf(priv.Public())}
	fmt.Printf("key %-12s %s\n", name, id.prin)
	return id
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
