// Command sf-dbserver runs the protected relational email database of
// paper section 6.2 as an RMI service over the secure channel.
// Delegations of mailbox authority are issued with -grant-owner.
//
// Usage:
//
//	sf-dbserver -key db.key -addr 127.0.0.1:7001
//	sf-dbserver -key db.key -addr 127.0.0.1:7001 -crl revoked.crl -admin-addr 127.0.0.1:7002
//	sf-dbserver -key db.key -grant-owner alice -grant-to '<principal sexp>'
//
// The -crl file (same format as sf-certd's: CRL S-expressions, one
// per line or concatenated) is re-read without a restart on SIGHUP or
// via POST /admin/reload-crl on the -admin-addr listener; individual
// CRLs can also be installed live via POST /admin/crl. Every install
// bumps the proof-cache epoch, so revocation bites on the next RMI
// call, not the next restart.
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/principal"
	"repro/internal/rmi"
	"repro/internal/sfkey"
)

func main() {
	keyFile := flag.String("key", "", "server private key file")
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	grantOwner := flag.String("grant-owner", "", "emit a mailbox delegation and exit")
	grantTo := flag.String("grant-to", "", "recipient principal S-expression")
	grantTTL := flag.Duration("grant-ttl", 0, "delegation lifetime (0 = unbounded)")
	seedDemo := flag.Bool("seed-demo", false, "insert demonstration messages")
	crlFile := flag.String("crl", "", "file of CRL S-expressions (one per line or concatenated)")
	adminAddr := flag.String("admin-addr", "", "revocation admin HTTP listen address (empty = disabled)")
	flag.Parse()

	if *keyFile == "" {
		log.Fatal("sf-dbserver: -key is required")
	}
	raw, err := os.ReadFile(*keyFile)
	if err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	kb, err := base64.StdEncoding.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		log.Fatalf("sf-dbserver: bad key file: %v", err)
	}
	priv, err := sfkey.PrivateFromBytes(kb)
	if err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	issuer := principal.KeyOf(priv.Public())

	if *grantOwner != "" {
		if *grantTo == "" {
			log.Fatal("sf-dbserver: -grant-owner needs -grant-to")
		}
		recipient, err := principal.Parse(*grantTo)
		if err != nil {
			log.Fatalf("sf-dbserver: recipient: %v", err)
		}
		v := core.Forever
		if *grantTTL > 0 {
			v = core.Until(time.Now().Add(*grantTTL))
		}
		c, err := cert.Delegate(priv, recipient, issuer, emaildb.OwnerTag(*grantOwner), v)
		if err != nil {
			log.Fatalf("sf-dbserver: %v", err)
		}
		fmt.Println(string(c.Sexp().Transport()))
		return
	}

	svc, err := emaildb.NewService()
	if err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	if *seedDemo {
		seed := []emaildb.Message{
			{Owner: "alice", Folder: "inbox", From: "bob@example.org", To: "alice", Subject: "lunch?", Date: time.Now().Add(-2 * time.Hour)},
			{Owner: "alice", Folder: "inbox", From: "carol@example.org", To: "alice", Subject: "budget draft", Date: time.Now().Add(-time.Hour)},
			{Owner: "bob", Folder: "inbox", From: "alice@example.org", To: "bob", Subject: "re: lunch?", Date: time.Now()},
		}
		for _, m := range seed {
			var r emaildb.InsertReply
			if err := svc.Insert(emaildb.InsertArgs{Msg: m}, &r); err != nil {
				log.Fatalf("sf-dbserver: seed: %v", err)
			}
		}
	}
	srv := rmi.NewServer()
	rs := cert.NewRevocationStore()
	// reloadCRLs re-reads the -crl file through the shared loader
	// (which accepts one-per-line and concatenated layouts alike, so
	// the same file works for sf-certd and sf-dbserver). AddNew's
	// dedup means re-reading an unchanged file bumps no epoch; a new
	// list bumps it, so every cached verdict resting on a revoked
	// certificate dies and the next RMI call re-verifies.
	reloadCRLs := func() (added, total int, err error) {
		lists, total, err := rs.LoadFile(*crlFile)
		return len(lists), total, err
	}
	if *crlFile != "" {
		_, total, err := reloadCRLs()
		if err != nil {
			log.Fatalf("sf-dbserver: crl: %v", err)
		}
		log.Printf("sf-dbserver: loaded %d revocation lists from %s", total, *crlFile)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				added, total, err := reloadCRLs()
				if err != nil {
					log.Printf("sf-dbserver: SIGHUP crl reload: %v", err)
					continue
				}
				log.Printf("sf-dbserver: SIGHUP reloaded %s: %d new of %d lists",
					*crlFile, added, total)
			}
		}()
	}
	if *adminAddr != "" {
		var reload func() (int, int, error)
		if *crlFile != "" {
			reload = reloadCRLs
		}
		go func() {
			log.Printf("sf-dbserver: revocation admin listening on %s", *adminAddr)
			log.Fatal(http.ListenAndServe(*adminAddr, cert.AdminHandler(rs, reload)))
		}()
	}
	if err := emaildb.RegisterWithRevocation(srv, svc, issuer, rs); err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	l, err := secure.Listen(*addr, &secure.Identity{Priv: priv})
	if err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	log.Printf("sf-dbserver: %s listening on %s (issuer %s)", emaildb.ObjectName, l.Addr(), issuer)
	log.Fatal(srv.Serve(l))
}
