// Command sf-dbserver runs the protected relational email database of
// paper section 6.2 as an RMI service over the secure channel.
// Delegations of mailbox authority are issued with -grant-owner.
//
// Usage:
//
//	sf-dbserver -key db.key -addr 127.0.0.1:7001
//	sf-dbserver -key db.key -addr 127.0.0.1:7001 -crl revoked.crl -admin-addr 127.0.0.1:7002
//	sf-dbserver -key db.key -admin-addr 127.0.0.1:7002 -admin-auth -operator operator.prin
//	sf-dbserver -key db.key -grant-owner alice -grant-to '<principal sexp>'
//
// The -crl file (same format as sf-certd's: CRL S-expressions, one
// per line or concatenated) is re-read without a restart on SIGHUP or
// via POST /admin/reload-crl on the -admin-addr listener; individual
// CRLs can also be installed live via POST /admin/crl. Every install
// bumps the proof-cache epoch, so revocation bites on the next RMI
// call, not the next restart. With -admin-auth the admin endpoints
// demand a speaks-for proof for the -operator principal regarding
// (sf-ctl admin) — the same machinery the database itself enforces on
// mailboxes. The admin listener also serves /metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/rmi"
	"repro/internal/server"
	"repro/internal/sfkey"
)

func main() {
	keyFile := flag.String("key", "", "server private key file")
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	grantOwner := flag.String("grant-owner", "", "emit a mailbox delegation and exit")
	grantTo := flag.String("grant-to", "", "recipient principal S-expression")
	grantTTL := flag.Duration("grant-ttl", 0, "delegation lifetime (0 = unbounded)")
	seedDemo := flag.Bool("seed-demo", false, "insert demonstration messages")
	crlFile := flag.String("crl", "", "file of CRL S-expressions (one per line or concatenated)")
	crlFollow := flag.String("crl-follow", "", "comma-separated certdir base URLs to pull CRLs from")
	crlFollowEvery := flag.Duration("crl-follow-every", certdir.DefaultGossipInterval, "CRL pull interval for -crl-follow")
	adminAddr := flag.String("admin-addr", "", "revocation admin + metrics HTTP listen address (empty = disabled)")
	adminAuth := flag.Bool("admin-auth", false, "require speaks-for proofs on the admin endpoints")
	operatorFile := flag.String("operator", "", "file holding the operator principal S-expression (required with -admin-auth)")
	crlSweep := flag.Duration("crl-sweep", time.Minute, "lapsed-CRL sweep interval (0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	obsFlags := server.RegisterObsFlags()
	flag.Parse()

	if *keyFile == "" {
		log.Fatal("sf-dbserver: -key is required")
	}
	priv, err := sfkey.LoadPrivateKeyFile(*keyFile)
	if err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	issuer := principal.KeyOf(priv.Public())

	if *grantOwner != "" {
		if *grantTo == "" {
			log.Fatal("sf-dbserver: -grant-owner needs -grant-to")
		}
		recipient, err := principal.Parse(*grantTo)
		if err != nil {
			log.Fatalf("sf-dbserver: recipient: %v", err)
		}
		v := core.Forever
		if *grantTTL > 0 {
			v = core.Until(time.Now().Add(*grantTTL))
		}
		c, err := cert.Delegate(priv, recipient, issuer, emaildb.OwnerTag(*grantOwner), v)
		if err != nil {
			log.Fatalf("sf-dbserver: %v", err)
		}
		fmt.Println(string(c.Sexp().Transport()))
		return
	}

	rt := server.New("sf-dbserver")
	if rt.Logger, err = server.NewLogger(*logFormat); err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	if err := obsFlags.Wire(rt); err != nil {
		log.Fatalf("sf-dbserver: audit log: %v", err)
	}

	svc, err := emaildb.NewService()
	if err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	if *seedDemo {
		seed := []emaildb.Message{
			{Owner: "alice", Folder: "inbox", From: "bob@example.org", To: "alice", Subject: "lunch?", Date: time.Now().Add(-2 * time.Hour)},
			{Owner: "alice", Folder: "inbox", From: "carol@example.org", To: "alice", Subject: "budget draft", Date: time.Now().Add(-time.Hour)},
			{Owner: "bob", Folder: "inbox", From: "alice@example.org", To: "bob", Subject: "re: lunch?", Date: time.Now()},
		}
		for _, m := range seed {
			var r emaildb.InsertReply
			if err := svc.Insert(emaildb.InsertArgs{Msg: m}, &r); err != nil {
				log.Fatalf("sf-dbserver: seed: %v", err)
			}
		}
	}
	srv := rmi.NewServer()
	srv.Obs = rt.Tracer()
	srv.Audit = rt.Audit()
	rs := cert.NewRevocationStore()
	rt.Every(*crlSweep, func() {
		if n := rs.Sweep(time.Now()); n > 0 {
			rt.Printf("swept %d lapsed CRLs", n)
		}
	})

	// The -crl wiring (initial load, SIGHUP reload, admin reload
	// endpoint) comes from the shared runtime; a pure verifier passes
	// no apply hook — installing into rs already bumps the proof-cache
	// epoch, so every cached verdict resting on a revoked certificate
	// dies and the next RMI call re-verifies.
	var reload func() (added, total int, err error)
	if *crlFile != "" {
		r, err := rt.WireCRLFile(rs, *crlFile, nil)
		if err != nil {
			log.Fatalf("sf-dbserver: crl: %v", err)
		}
		reload = func() (int, int, error) {
			added, total, _, err := r()
			return added, total, err
		}
	}

	// -crl-follow closes the operator-in-the-loop gap: instead of (or
	// in addition to) CRLs arriving by file and admin endpoint, the
	// database pulls them from the certificate directories on the
	// runtime ticker, so a revocation published anywhere in the mesh
	// bites here within one gossip round plus one pull interval.
	var followers []*certdir.CRLFollower
	if *crlFollow != "" {
		for _, u := range strings.Split(*crlFollow, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			f := certdir.NewCRLFollower(certdir.NewClient(u), rs)
			f.OnError = func(err error) { rt.Printf("crl-follow: %v", err) }
			followers = append(followers, f)
			rt.Every(*crlFollowEvery, func() {
				if n, err := f.Pull(); err == nil && n > 0 {
					rt.Printf("crl-follow: installed %d CRLs from %s", n, u)
				}
			})
		}
		rt.Printf("following CRLs from %d directories every %s", len(followers), *crlFollowEvery)
	}

	rt.Metrics().Register(server.ProofCacheCollector(core.SharedProofCache()))
	rt.Metrics().Register(func(emit func(server.Metric)) {
		emit(server.Gauge("sf_crls", "Revocation lists installed.", float64(len(rs.Lists()))))
		if len(followers) > 0 {
			var pulled, rejected float64
			for _, f := range followers {
				fs := f.Stats()
				pulled += float64(fs.Pulled)
				rejected += float64(fs.Rejected)
			}
			emit(server.Counter("sf_crl_follow_pulled_total", "CRLs installed via -crl-follow.", pulled))
			emit(server.Counter("sf_crl_follow_rejected_total", "CRLs refused via -crl-follow (bad signature).", rejected))
		}
		st := srv.Stats()
		emit(server.Counter("sf_rmi_calls_total", "RMI calls dispatched.", float64(st.Calls)))
		emit(server.Counter("sf_rmi_auth_checks_total", "RMI authorization checks.", float64(st.AuthChecks)))
		emit(server.Counter("sf_rmi_auth_failures_total", "RMI calls denied authorization.", float64(st.AuthFailures)))
	})

	if *adminAddr != "" {
		admin := cert.AdminHandler(rs, reload)
		if *adminAuth {
			if *operatorFile == "" {
				log.Fatal("sf-dbserver: -admin-auth requires -operator")
			}
			operator, err := server.LoadPrincipalFile(*operatorFile)
			if err != nil {
				log.Fatalf("sf-dbserver: operator principal: %v", err)
			}
			guard := httpauth.NewCtlGuard(operator, rs)
			guard.Audit = rt.Audit()
			admin = guard.Middleware(cert.CtlTag(cert.CtlAdmin), 1<<20, admin)
			rt.Printf("admin surface enforcing: callers must speak for %s", operator)
		}
		mux := rt.AdminMux()
		mux.Handle(cert.AdminPathCRL, admin)
		mux.Handle(cert.AdminPathReload, admin)
		if _, err := rt.ServeAdmin(*adminAddr); err != nil {
			log.Fatalf("sf-dbserver: %v", err)
		}
	}

	if err := emaildb.RegisterWithRevocation(srv, svc, issuer, rs); err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	l, err := secure.Listen(*addr, &secure.Identity{Priv: priv})
	if err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
	// The runtime owns the RMI lifecycle: at shutdown the listener
	// closes first, then in-flight dispatches drain (bounded by
	// ShutdownTimeout) before the channels are torn down — a client
	// mid-call sees its reply, not a reset.
	rt.ServeRMI(l, srv)
	rt.Printf("%s listening on %s (issuer %s)", emaildb.ObjectName, l.Addr(), issuer)
	if err := rt.Wait(); err != nil {
		log.Fatalf("sf-dbserver: %v", err)
	}
}
