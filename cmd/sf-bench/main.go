// Command sf-bench regenerates every table and figure of the paper's
// evaluation (section 7) plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	sf-bench [-quick] [fig6|fig7|fig8|table1|setup|ablate-shortcuts|ablate-reverify|ablate-local|ablate-handshake|all]
//
// Each experiment prints the paper's numbers beside our measurements
// and the within-figure ratios: on modern hardware the absolute
// values shrink ~100x, but the orderings and rough factors — who
// wins, by how much, where the crossovers fall — are the reproduced
// result.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "fewer iterations (smoke test)")
	shape := flag.Bool("shape", false, "exit nonzero when a figure's measured ordering contradicts the paper's")
	flag.Parse()

	opts := bench.DefaultOptions
	if *quick {
		opts = bench.QuickOptions
	}

	which := flag.Args()
	if len(which) == 0 {
		which = []string{"all"}
	}
	type runner struct {
		name string
		fn   func() (*bench.Figure, error)
	}
	all := []runner{
		{"fig6", func() (*bench.Figure, error) { return bench.Fig6(opts) }},
		{"fig7", func() (*bench.Figure, error) { return bench.Fig7(opts) }},
		{"fig8", func() (*bench.Figure, error) { return bench.Fig8(opts) }},
		{"table1", func() (*bench.Figure, error) { return bench.Table1(opts) }},
		{"setup", func() (*bench.Figure, error) { return bench.Setup(opts) }},
		{"ablate-shortcuts", func() (*bench.Figure, error) { return bench.AblateShortcuts(opts, 8) }},
		{"ablate-reverify", func() (*bench.Figure, error) { return bench.AblateReverify(opts) }},
		{"ablate-local", func() (*bench.Figure, error) { return bench.AblateLocalChannel(opts) }},
		{"ablate-handshake", func() (*bench.Figure, error) { return bench.AblateSecureHandshake(opts) }},
	}
	want := map[string]bool{}
	for _, w := range which {
		want[w] = true
	}
	failures := 0
	for _, r := range all {
		if !want["all"] && !want[r.name] {
			continue
		}
		fig, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failures++
			continue
		}
		fmt.Println(fig.Render())
		if *shape {
			for _, v := range fig.CheckShape(true) {
				fmt.Fprintf(os.Stderr, "shape violation: %s\n", v)
				failures++
			}
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
