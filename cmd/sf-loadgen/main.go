// Command sf-loadgen drives an in-process Snowflake mesh — N
// gateways, M gossip-peered WAL-backed certificate directories, one
// protected email database — with K synthetic principals under a
// seeded heavy-tailed delegation graph, and measures the four
// canonical flows: cold proof discovery, warm cached admit,
// publish→visible-at-peer, revoke→rejected. Correctness is asserted
// while the load runs; any violation makes the exit status non-zero.
//
// Usage:
//
//	sf-loadgen -profile smoke -out BENCH_8.json
//	sf-loadgen -profile standard -principals 2000 -concurrency 64
//	sf-loadgen -profile soak -seed 7
//	sf-loadgen -profile dirscale -out BENCH_9.json
//
// The dirscale profile skips the mesh entirely and profiles a single
// directory at 1k/10k/100k certificates: one-cert-diff digest bytes
// (Merkle vs flat), cold-sync gossip rounds, and snapshot-bootstrap
// speedup. Only -seed, -pr, and -out apply to it.
//
// Flags override the chosen profile field-by-field. The -out file is
// the per-PR JSON trajectory (same schema as BENCH_7.json); smoke
// runs carry recorded baselines so speedup ratios appear without
// digging through git history.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/certdir"
	"repro/internal/loadgen"
)

func main() {
	profile := flag.String("profile", "smoke", "load shape: smoke, standard, soak, or dirscale")
	gateways := flag.Int("gateways", 0, "override: number of gateways")
	directories := flag.Int("directories", 0, "override: number of directories")
	principals := flag.Int("principals", 0, "override: number of synthetic principals")
	orgs := flag.Int("orgs", 0, "override: number of organization issuers")
	seed := flag.Int64("seed", -1, "override: graph/schedule seed")
	zipf := flag.Float64("zipf", 0, "override: zipf exponent (>1) for fan-out and targeting")
	warmOps := flag.Int("warm-ops", 0, "override: warm-flow request count")
	publishOps := flag.Int("publish-ops", 0, "override: publish-visibility probes")
	revocations := flag.Int("revocations", 0, "override: revoke-rejection probes")
	concurrency := flag.Int("concurrency", 0, "override: client workers")
	churnWorkers := flag.Int("churn", -1, "override: background publish/revoke workers")
	churnOps := flag.Int("churn-ops", 0, "override: cycles per churn worker")
	gossip := flag.Duration("gossip-interval", 0, "override: gossip/CRL-pull period")
	fsync := flag.String("fsync", "", "override: WAL sync policy (always, interval, never)")
	pr := flag.Int("pr", 8, "PR number stamped into the JSON report")
	out := flag.String("out", "", "write the JSON trajectory report here")
	flag.Parse()

	if *profile == "dirscale" {
		cfg := loadgen.DirScaleDefault()
		if *seed >= 0 {
			cfg.Seed = *seed
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "pr" {
				cfg.PR = *pr
			}
		})
		cfg.Now = time.Now()
		start := time.Now()
		res, err := loadgen.DirScale(cfg)
		if err != nil {
			log.Fatalf("sf-loadgen: %v", err)
		}
		fmt.Print(res.Summary())
		fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			if err := res.ToBench().WriteFile(*out); err != nil {
				log.Fatalf("sf-loadgen: write %s: %v", *out, err)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return
	}

	mk, ok := loadgen.Profiles()[*profile]
	if !ok {
		log.Fatalf("sf-loadgen: unknown profile %q (want smoke, standard, dirscale, or soak)", *profile)
	}
	cfg := mk()
	override := false
	set := func(cond bool, apply func()) {
		if cond {
			apply()
			override = true
		}
	}
	set(*gateways > 0, func() { cfg.Gateways = *gateways })
	set(*directories > 0, func() { cfg.Directories = *directories })
	set(*principals > 0, func() { cfg.Principals = *principals })
	set(*orgs > 0, func() { cfg.Orgs = *orgs })
	set(*seed >= 0, func() { cfg.Seed = *seed })
	set(*zipf > 0, func() { cfg.ZipfS = *zipf })
	set(*warmOps > 0, func() { cfg.WarmOps = *warmOps })
	set(*publishOps > 0, func() { cfg.PublishOps = *publishOps })
	set(*revocations > 0, func() { cfg.Revocations = *revocations })
	set(*concurrency > 0, func() { cfg.Concurrency = *concurrency })
	set(*churnWorkers >= 0, func() { cfg.ChurnWorkers = *churnWorkers })
	set(*churnOps > 0, func() { cfg.ChurnOps = *churnOps })
	set(*gossip > 0, func() { cfg.GossipInterval = *gossip })
	if *fsync != "" {
		p, err := certdir.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("sf-loadgen: %v", err)
		}
		cfg.Fsync = p
		override = true
	}
	if override {
		// A tweaked profile is no longer the recorded shape; refuse to
		// compare its numbers against the profile's baselines.
		cfg.Profile = "custom"
	}

	start := time.Now()
	res, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("sf-loadgen: %v", err)
	}
	fmt.Print(res.Summary())
	fmt.Printf("total (incl. mesh convergence): %s\n", time.Since(start).Round(time.Millisecond))

	if *out != "" {
		if err := res.ToBench(*pr).WriteFile(*out); err != nil {
			log.Fatalf("sf-loadgen: write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if len(res.Violations) > 0 {
		os.Exit(1)
	}
}
