// Command sf-keygen creates a Snowflake identity: an Ed25519 key pair
// stored as S-expressions, with the public principal and its hash
// printed for use as a server issuer ("specifying the hash of his
// public key when starting up the server", paper section 6.1).
//
// Usage:
//
//	sf-keygen -out alice.key
//	sf-keygen -out alice.key -seed "deterministic seed"   # tests only
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/principal"
	"repro/internal/sfkey"
)

func main() {
	out := flag.String("out", "", "file to write the private key to (default stdout)")
	seed := flag.String("seed", "", "derive deterministically from a seed (INSECURE; tests only)")
	flag.Parse()

	var priv *sfkey.PrivateKey
	var err error
	if *seed != "" {
		priv = sfkey.FromSeed([]byte(*seed))
	} else if priv, err = sfkey.Generate(); err != nil {
		log.Fatalf("sf-keygen: %v", err)
	}

	encoded := base64.StdEncoding.EncodeToString(priv.Bytes())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(encoded+"\n"), 0o600); err != nil {
			log.Fatalf("sf-keygen: %v", err)
		}
	} else {
		fmt.Println(encoded)
	}

	pub := priv.Public()
	fmt.Fprintf(os.Stderr, "public principal: %s\n", pub.Sexp().Advanced())
	fmt.Fprintf(os.Stderr, "hash principal:   %s\n", principal.HashOfKey(pub).Sexp().Advanced())
	fmt.Fprintf(os.Stderr, "fingerprint:      %s\n", pub.Fingerprint())
}
