// Command sf-vet runs the repo's invariant analyzers (internal/lint)
// over the named packages and reports violations in the familiar
// file:line:col format. It is the blocking static-analysis step in
// CI:
//
//	go run ./cmd/sf-vet ./...
//
// Exit status: 0 clean, 1 findings, 2 load/internal failure.
// Intentional exceptions are written as
//
//	//sfvet:ignore <analyzer> <reason>
//
// on (or directly above) the flagged line; bare ignores without a
// reason are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "run a single analyzer by name")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sf-vet [-list] [-only analyzer] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repo's invariant analyzers; defaults to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if a.Name == *only {
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "sf-vet: unknown analyzer %q (try -list)\n", *only)
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sf-vet:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sf-vet:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sf-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sf-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
