// Command sf-webfs runs the protected web file server of paper
// section 6.1: control rests with the hash of the owner's public key;
// subtrees are shared by issuing delegation certificates (see the
// -share flags), never by accounts or ACLs.
//
// Usage:
//
//	sf-webfs -root ./public -owner-key alice.key -addr :8080
//	sf-webfs -owner-key alice.key -share-prefix /pub/ -share-to '<principal sexp>'
//
// Like every sf-* daemon it boots through the shared server runtime:
// -admin-addr serves /metrics (proof-cache counters), and SIGTERM
// drains the listener gracefully.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/server"
	"repro/internal/sfkey"
	"repro/internal/webfs"
)

func main() {
	root := flag.String("root", ".", "directory to serve")
	keyFile := flag.String("owner-key", "", "owner private key file (sf-keygen output)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	adminAddr := flag.String("admin-addr", "", "admin/metrics HTTP listen address (empty = disabled)")
	service := flag.String("service", "files", "service name used in tags")
	sharePrefix := flag.String("share-prefix", "", "emit a delegation for this path prefix and exit")
	shareTo := flag.String("share-to", "", "recipient principal S-expression for -share-prefix")
	shareTTL := flag.Duration("share-ttl", 24*time.Hour, "delegation lifetime")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	obsFlags := server.RegisterObsFlags()
	flag.Parse()

	if *keyFile == "" {
		log.Fatal("sf-webfs: -owner-key is required")
	}
	priv, err := sfkey.LoadPrivateKeyFile(*keyFile)
	if err != nil {
		log.Fatalf("sf-webfs: %v", err)
	}
	ownerHash := principal.HashOfKey(priv.Public())

	if *sharePrefix != "" {
		if *shareTo == "" {
			log.Fatal("sf-webfs: -share-prefix needs -share-to")
		}
		recipient, err := principal.Parse(*shareTo)
		if err != nil {
			log.Fatalf("sf-webfs: recipient: %v", err)
		}
		c, err := webfs.ShareSubtree(priv, ownerHash, recipient, *service, *sharePrefix, *shareTTL)
		if err != nil {
			log.Fatalf("sf-webfs: %v", err)
		}
		fmt.Println(string(c.Sexp().Transport()))
		return
	}

	rt := server.New("sf-webfs")
	if rt.Logger, err = server.NewLogger(*logFormat); err != nil {
		log.Fatalf("sf-webfs: %v", err)
	}
	if err := obsFlags.Wire(rt); err != nil {
		log.Fatalf("sf-webfs: audit log: %v", err)
	}
	rt.Metrics().Register(server.ProofCacheCollector(core.SharedProofCache()))

	srv := webfs.New(ownerHash, *service, os.DirFS(*root))
	srv.Protected().Obs = rt.Tracer()
	srv.Protected().Audit = rt.Audit()
	bound, err := rt.Serve(*addr, srv)
	if err != nil {
		log.Fatalf("sf-webfs: %v", err)
	}
	if _, err := rt.ServeAdmin(*adminAddr); err != nil {
		log.Fatalf("sf-webfs: %v", err)
	}
	rt.Printf("serving %s on %s; controlled by %s", *root, bound, ownerHash)
	if err := rt.Wait(); err != nil {
		log.Fatalf("sf-webfs: %v", err)
	}
}
