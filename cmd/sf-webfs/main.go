// Command sf-webfs runs the protected web file server of paper
// section 6.1: control rests with the hash of the owner's public key;
// subtrees are shared by issuing delegation certificates (see the
// -share flags), never by accounts or ACLs.
//
// Usage:
//
//	sf-webfs -root ./public -owner-key alice.key -addr :8080
//	sf-webfs -owner-key alice.key -share-prefix /pub/ -share-to '<principal sexp>'
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/webfs"
)

func main() {
	root := flag.String("root", ".", "directory to serve")
	keyFile := flag.String("owner-key", "", "owner private key file (sf-keygen output)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	service := flag.String("service", "files", "service name used in tags")
	sharePrefix := flag.String("share-prefix", "", "emit a delegation for this path prefix and exit")
	shareTo := flag.String("share-to", "", "recipient principal S-expression for -share-prefix")
	shareTTL := flag.Duration("share-ttl", 24*time.Hour, "delegation lifetime")
	flag.Parse()

	if *keyFile == "" {
		log.Fatal("sf-webfs: -owner-key is required")
	}
	raw, err := os.ReadFile(*keyFile)
	if err != nil {
		log.Fatalf("sf-webfs: %v", err)
	}
	kb, err := base64.StdEncoding.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		log.Fatalf("sf-webfs: bad key file: %v", err)
	}
	priv, err := sfkey.PrivateFromBytes(kb)
	if err != nil {
		log.Fatalf("sf-webfs: %v", err)
	}
	ownerHash := principal.HashOfKey(priv.Public())

	if *sharePrefix != "" {
		if *shareTo == "" {
			log.Fatal("sf-webfs: -share-prefix needs -share-to")
		}
		recipient, err := principal.Parse(*shareTo)
		if err != nil {
			log.Fatalf("sf-webfs: recipient: %v", err)
		}
		c, err := webfs.ShareSubtree(priv, ownerHash, recipient, *service, *sharePrefix, *shareTTL)
		if err != nil {
			log.Fatalf("sf-webfs: %v", err)
		}
		fmt.Println(string(c.Sexp().Transport()))
		return
	}

	srv := webfs.New(ownerHash, *service, os.DirFS(*root))
	log.Printf("sf-webfs: serving %s on %s; controlled by %s", *root, *addr, ownerHash)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
