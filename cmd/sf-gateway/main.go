// Command sf-gateway runs the quoting protocol gateway of paper
// section 6.3: an HTML-over-HTTP front end that forwards mailbox
// operations to the sf-dbserver over secure-channel RMI, quoting each
// HTTP client so the database makes the real access-control decision.
//
// Usage:
//
//	sf-gateway -key gw.key -db 127.0.0.1:7001 -db-issuer '<principal sexp>' -addr 127.0.0.1:8081
//	sf-gateway -key gw.key -db 127.0.0.1:7001 -db-issuer '<principal sexp>' -certdir http://127.0.0.1:8360
//
// With -certdir the gateway's prover additionally discovers
// delegation chains from the certificate directory and subscribes to
// its invalidation event stream, so revoked or retracted delegations
// are dropped from the prover's cache the moment the directory stops
// vouching for them.
package main

import (
	"encoding/base64"
	"flag"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/certdir"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
)

func main() {
	keyFile := flag.String("key", "", "gateway private key file")
	dbAddr := flag.String("db", "127.0.0.1:7001", "database server address")
	dbIssuerS := flag.String("db-issuer", "", "database issuer principal S-expression")
	addr := flag.String("addr", "127.0.0.1:8081", "HTTP listen address")
	certdirURL := flag.String("certdir", "", "certificate directory base URL for remote chain discovery (empty = local-only)")
	flag.Parse()

	if *keyFile == "" || *dbIssuerS == "" {
		log.Fatal("sf-gateway: -key and -db-issuer are required")
	}
	raw, err := os.ReadFile(*keyFile)
	if err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	kb, err := base64.StdEncoding.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		log.Fatalf("sf-gateway: bad key file: %v", err)
	}
	priv, err := sfkey.PrivateFromBytes(kb)
	if err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	dbIssuer, err := principal.Parse(*dbIssuerS)
	if err != nil {
		log.Fatalf("sf-gateway: db issuer: %v", err)
	}

	pv := gateway.NewProver(priv)
	id, err := secure.NewIdentity()
	if err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	// The gateway controls its channel identity too, so its prover can
	// link channel key -> gateway key when the database challenges it.
	pv.AddClosure(prover.NewKeyClosure(id.Priv))
	db, err := rmi.Dial(secure.Dialer{ID: id}, *dbAddr, pv)
	if err != nil {
		log.Fatalf("sf-gateway: dial db: %v", err)
	}
	// With -certdir the gateway's prover discovers delegation chains it
	// was never handed (remote discovery) and subscribes to the
	// directory's invalidation stream, so a digested client delegation
	// that is later revoked or retracted is dropped from the prover's
	// graph — and its verdict from the shared proof cache — instead of
	// being quoted to the database until it expires.
	if *certdirURL != "" {
		dir := certdir.NewClient(*certdirURL)
		pv.AddRemote(dir)
		pv.Subscribe(dir, core.SharedProofCache())
		log.Printf("sf-gateway: using certificate directory %s (discovery + invalidation)", *certdirURL)
	}
	gw := gateway.New(priv, db, dbIssuer, pv)
	log.Printf("sf-gateway: bridging %s on %s (gateway key %s)",
		*dbAddr, *addr, priv.Public().Fingerprint())
	log.Fatal(http.ListenAndServe(*addr, gw))
}
