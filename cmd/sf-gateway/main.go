// Command sf-gateway runs the quoting protocol gateway of paper
// section 6.3: an HTML-over-HTTP front end that forwards mailbox
// operations to the sf-dbserver over secure-channel RMI, quoting each
// HTTP client so the database makes the real access-control decision.
//
// Usage:
//
//	sf-gateway -key gw.key -db 127.0.0.1:7001 -db-issuer '<principal sexp>' -addr 127.0.0.1:8081
//	sf-gateway -key gw.key -db 127.0.0.1:7001 -db-issuer '<principal sexp>' -certdir http://127.0.0.1:8360
//
// With -certdir the gateway's prover additionally discovers
// delegation chains from the certificate directory and subscribes to
// its invalidation event stream, so revoked or retracted delegations
// are dropped from the prover's cache the moment the directory stops
// vouching for them. The gateway digests a delegation per client;
// -sweep bounds the graph by evicting expired edges on a timer (the
// runtime schedules it — the old every-256-digests heuristic idled
// exactly when traffic stopped and cleanup mattered). -admin-addr
// serves /metrics.
package main

import (
	"flag"
	"log"
	"time"

	"repro/internal/certdir"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/server"
	"repro/internal/sfkey"
)

func main() {
	keyFile := flag.String("key", "", "gateway private key file")
	dbAddr := flag.String("db", "127.0.0.1:7001", "database server address")
	dbIssuerS := flag.String("db-issuer", "", "database issuer principal S-expression")
	addr := flag.String("addr", "127.0.0.1:8081", "HTTP listen address")
	adminAddr := flag.String("admin-addr", "", "admin/metrics HTTP listen address (empty = disabled)")
	certdirURL := flag.String("certdir", "", "certificate directory base URL for remote chain discovery (empty = local-only)")
	sweepEvery := flag.Duration("sweep", time.Minute, "prover expired-edge sweep interval (0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	obsFlags := server.RegisterObsFlags()
	flag.Parse()

	if *keyFile == "" || *dbIssuerS == "" {
		log.Fatal("sf-gateway: -key and -db-issuer are required")
	}
	priv, err := sfkey.LoadPrivateKeyFile(*keyFile)
	if err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	dbIssuer, err := principal.Parse(*dbIssuerS)
	if err != nil {
		log.Fatalf("sf-gateway: db issuer: %v", err)
	}

	rt := server.New("sf-gateway")
	if rt.Logger, err = server.NewLogger(*logFormat); err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	if err := obsFlags.Wire(rt); err != nil {
		log.Fatalf("sf-gateway: audit log: %v", err)
	}

	pv := gateway.NewProver(priv)
	// Directory lookups the prover makes mid-admit are the expensive
	// leg of a cold admit; time them under their own histogram.
	pv.RemoteHist = obs.NewHistogram("sf_prover_remote_seconds", "Prover remote chain-discovery latency per FindProof miss.")
	rt.Metrics().RegisterHistogram(pv.RemoteHist)
	id, err := secure.NewIdentity()
	if err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	// The gateway controls its channel identity too, so its prover can
	// link channel key -> gateway key when the database challenges it.
	pv.AddClosure(prover.NewKeyClosure(id.Priv))
	db, err := rmi.Dial(secure.Dialer{ID: id}, *dbAddr, pv)
	if err != nil {
		log.Fatalf("sf-gateway: dial db: %v", err)
	}
	// With -certdir the gateway's prover discovers delegation chains it
	// was never handed (remote discovery) and subscribes to the
	// directory's invalidation stream, so a digested client delegation
	// that is later revoked or retracted is dropped from the prover's
	// graph — and its verdict from the shared proof cache — instead of
	// being quoted to the database until it expires.
	if *certdirURL != "" {
		dir := certdir.NewClient(*certdirURL)
		pv.AddRemote(dir)
		sub := pv.Subscribe(dir, core.SharedProofCache())
		rt.OnShutdown(sub.Stop)
		rt.Printf("using certificate directory %s (discovery + invalidation)", *certdirURL)
	}
	// Timer-based graph hygiene: the gateway and its RMI invoker share
	// this long-lived prover, so expired edges are evicted on the
	// clock, not on request count.
	rt.Every(*sweepEvery, func() { pv.Sweep(time.Now()) })

	rt.Metrics().Register(server.ProofCacheCollector(core.SharedProofCache()))
	rt.Metrics().Register(server.ProverCollector(pv))

	gw := gateway.New(priv, db, dbIssuer, pv)
	gw.Obs = rt.Tracer()
	gw.Audit = rt.Audit()
	lat := rt.Latencies()
	gw.ColdAdmit = lat.ColdAdmit
	gw.WarmAdmit = lat.WarmAdmit
	rt.Metrics().Register(func(emit func(server.Metric)) {
		st := gw.Stats()
		emit(server.Counter("sf_gateway_requests_total", "HTTP requests received.", float64(st.Requests)))
		emit(server.Counter("sf_gateway_challenges_total", "Challenges issued.", float64(st.Challenges)))
		emit(server.Counter("sf_gateway_digested_total", "Client proofs digested.", float64(st.Digested)))
		emit(server.Counter("sf_gateway_forwarded_total", "Requests forwarded to the database.", float64(st.Forwarded)))
		emit(server.Counter("sf_gateway_denied_total", "Requests denied.", float64(st.Denied)))
	})

	bound, err := rt.Serve(*addr, gw)
	if err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	if _, err := rt.ServeAdmin(*adminAddr); err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
	rt.Printf("bridging %s on %s (gateway key %s)",
		*dbAddr, bound, priv.Public().Fingerprint())
	if err := rt.Wait(); err != nil {
		log.Fatalf("sf-gateway: %v", err)
	}
}
