// Command sf-certd runs the certificate directory daemon: principals
// publish signed delegations, provers on other machines query by
// issuer or subject to discover speaks-for chains (internal/certdir).
//
// Usage:
//
//	sf-certd -addr 127.0.0.1:8360
//	sf-certd -addr 127.0.0.1:8360 -shards 64 -sweep 30s -crl revoked.crl
//	sf-certd -addr 127.0.0.1:8360 -data-dir /var/lib/sf-certd \
//	         -fsync always -peer http://dir-b:8360 -peer http://dir-c:8360
//
// With -data-dir the directory is durable: accepted publishes and
// removals are journaled to a write-ahead log before they are
// acknowledged, and a restart replays the log. With one or more -peer
// flags the directory replicates: publishes fan out to the peers
// immediately and a periodic anti-entropy round pulls whatever a push
// missed. The -crl file holds CRL S-expressions (one per line or
// concatenated); listed certificates are evicted at every sweep, and
// the file is re-read without a restart on SIGHUP or through the
// POST /certdir/admin/reload endpoint. CRLs also arrive live over
// POST /certdir/admin/crl and replicate to peers (CRL gossip), and
// every removal or revocation is emitted on the /certdir/events
// stream so subscribed provers drop their cached copies.
// docs/OPERATIONS.md covers every flag and counter in detail.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
)

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return fmt.Sprint(*p) }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8360", "listen address")
	shards := flag.Int("shards", certdir.DefaultShards, "store shard count")
	sweep := flag.Duration("sweep", 30*time.Second, "expiry sweep interval (0 disables)")
	crlFile := flag.String("crl", "", "file of CRL S-expressions to enforce")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log (empty = memory-only)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval, or never")
	fsyncEvery := flag.Duration("fsync-every", time.Second, "sync period under -fsync interval")
	var peers peerList
	flag.Var(&peers, "peer", "peer directory base URL (repeatable) to replicate with")
	gossip := flag.Duration("gossip", certdir.DefaultGossipInterval, "anti-entropy round interval (0 disables pulls; pushes still run)")
	pushRetries := flag.Int("push-retries", certdir.DefaultPushRetries, "push attempts per peer per mutation")
	flag.Parse()

	var store *certdir.Store
	if *dataDir != "" {
		policy, err := certdir.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
		st, rec, err := certdir.OpenDurable(*dataDir, *shards, policy, time.Now())
		if err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
		store = st
		log.Printf("sf-certd: replayed %d WAL records from %s (%d dropped, torn=%v, compacted=%v, %d certs live)",
			rec.Replayed, *dataDir, rec.Dropped, rec.Torn, rec.Compacted, store.Len())
		if policy == certdir.SyncInterval && *fsyncEvery > 0 {
			go func() {
				for range time.Tick(*fsyncEvery) {
					if err := store.SyncWAL(); err != nil {
						log.Printf("sf-certd: wal sync: %v", err)
					}
				}
			}()
		}
		// No clean-shutdown hook on purpose: the daemon dies by signal,
		// and the WAL is built to make that safe (replay + torn-tail
		// truncation at next start).
	} else {
		store = certdir.NewStore(*shards)
	}

	revocations := cert.NewRevocationStore()
	if *crlFile != "" {
		_, total, err := revocations.LoadFile(*crlFile)
		if err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
		log.Printf("sf-certd: loaded %d revocation lists from %s", total, *crlFile)
	}

	if *sweep > 0 {
		go func() {
			for range time.Tick(*sweep) {
				now := time.Now()
				expired := store.Sweep(now)
				revoked := store.EvictRevokedByIssuer(revocations.RevokedByIssuerAt(now))
				if expired+revoked > 0 {
					log.Printf("sf-certd: swept %d expired, %d revoked (%d stored)",
						expired, revoked, store.Len())
				}
			}
		}()
	}

	svc := certdir.NewService(store)
	svc.Revocations = revocations
	if len(peers) > 0 {
		clients := make([]*certdir.Client, len(peers))
		for i, p := range peers {
			clients[i] = certdir.NewClient(p)
		}
		rep := certdir.NewReplicator(store, clients)
		rep.Revocations = revocations
		rep.Interval = *gossip
		if *gossip <= 0 {
			// A zero ticker panics; an effectively-infinite interval
			// keeps pushes running while disabling pulls, as documented.
			rep.Interval = time.Duration(1<<62 - 1)
		}
		rep.Retries = *pushRetries
		rep.Logf = log.Printf
		rep.Start()
		svc.Replicator = rep
		// One eager round so a restarted or freshly added node catches
		// up before its first ticker tick.
		go func() {
			if n, err := rep.Converge(); err != nil {
				log.Printf("sf-certd: initial anti-entropy: %v", err)
			} else if n > 0 {
				log.Printf("sf-certd: initial anti-entropy pulled %d certs", n)
			}
		}()
		log.Printf("sf-certd: replicating with %d peer(s), gossip every %s", len(peers), *gossip)
	}

	// Hot CRL reload: SIGHUP and the admin endpoint run the same
	// function — re-read the file through the shared loader (new lists
	// only, dedup keeps a no-op reload from flushing the proof cache),
	// evict what the new lists void RIGHT NOW rather than at the next
	// sweep, and fan the new lists out to gossip peers.
	if *crlFile != "" {
		reload := func() (added, total, evicted int, err error) {
			// On a partial failure (a malformed list mid-file) the lists
			// before it ARE installed — evict and gossip them rather than
			// leaving their revocations to the next sweep.
			lists, total, err := revocations.LoadFile(*crlFile)
			if len(lists) > 0 {
				evicted = store.EvictRevokedByIssuer(revocations.RevokedByIssuerAt(time.Now()))
				if svc.Replicator != nil {
					for _, rl := range lists {
						svc.Replicator.EnqueueCRL(rl)
					}
				}
			}
			return len(lists), total, evicted, err
		}
		svc.ReloadCRLs = reload
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				added, total, evicted, err := reload()
				if err != nil {
					log.Printf("sf-certd: SIGHUP crl reload: %v", err)
					continue
				}
				log.Printf("sf-certd: SIGHUP reloaded %s: %d new of %d lists, %d certs evicted",
					*crlFile, added, total, evicted)
			}
		}()
	}

	log.Printf("sf-certd: directory listening on %s (%d shards)", *addr, *shards)
	log.Fatal(http.ListenAndServe(*addr, svc))
}
