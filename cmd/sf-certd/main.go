// Command sf-certd runs the certificate directory daemon: principals
// publish signed delegations, provers on other machines query by
// issuer or subject to discover speaks-for chains (internal/certdir).
//
// Usage:
//
//	sf-certd -addr 127.0.0.1:8360
//	sf-certd -addr 127.0.0.1:8360 -shards 64 -sweep 30s -crl revoked.crl
//
// The -crl file holds CRL S-expressions (one per line or
// concatenated); listed certificates are evicted at every sweep.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/sexp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8360", "listen address")
	shards := flag.Int("shards", certdir.DefaultShards, "store shard count")
	sweep := flag.Duration("sweep", 30*time.Second, "expiry sweep interval (0 disables)")
	crlFile := flag.String("crl", "", "file of CRL S-expressions to enforce")
	flag.Parse()

	store := certdir.NewStore(*shards)

	revocations := cert.NewRevocationStore()
	if *crlFile != "" {
		if err := loadCRLs(revocations, *crlFile); err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
	}

	if *sweep > 0 {
		go func() {
			for range time.Tick(*sweep) {
				now := time.Now()
				expired := store.Sweep(now)
				revoked := 0
				if *crlFile != "" {
					revoked = store.EvictRevoked(revocations.RevokedAt(now))
				}
				if expired+revoked > 0 {
					log.Printf("sf-certd: swept %d expired, %d revoked (%d stored)",
						expired, revoked, store.Len())
				}
			}
		}()
	}

	log.Printf("sf-certd: directory listening on %s (%d shards)", *addr, *shards)
	log.Fatal(http.ListenAndServe(*addr, certdir.NewService(store)))
}

// loadCRLs reads every CRL expression in the file into the store.
func loadCRLs(rs *cert.RevocationStore, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n := 0
	for len(bytes.TrimSpace(raw)) > 0 {
		e, used, err := sexp.Parse(raw)
		if err != nil {
			return fmt.Errorf("crl %d: %w", n+1, err)
		}
		rl, err := cert.RevocationListFromSexp(e)
		if err != nil {
			return fmt.Errorf("crl %d: %w", n+1, err)
		}
		if err := rs.Add(rl); err != nil {
			return fmt.Errorf("crl %d: %w", n+1, err)
		}
		raw = raw[used:]
		n++
	}
	log.Printf("sf-certd: loaded %d revocation lists from %s", n, path)
	return nil
}
