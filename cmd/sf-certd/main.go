// Command sf-certd runs the certificate directory daemon: principals
// publish signed delegations, provers on other machines query by
// issuer or subject to discover speaks-for chains (internal/certdir).
//
// Usage:
//
//	sf-certd -addr 127.0.0.1:8360
//	sf-certd -addr 127.0.0.1:8360 -shards 64 -sweep 30s -crl revoked.crl
//	sf-certd -addr 127.0.0.1:8360 -data-dir /var/lib/sf-certd \
//	         -fsync always -peer http://dir-b:8360 -peer http://dir-c:8360
//	sf-certd -addr 127.0.0.1:8360 -admin-auth -operator operator.prin \
//	         -ctl-key dirA.key -ctl-cert dirA-ctl.cert -peer http://dir-b:8360
//
// With -data-dir the directory is durable: accepted publishes and
// removals are journaled to a write-ahead log before they are
// acknowledged, and a restart replays the log. With one or more -peer
// flags the directory replicates: publishes fan out to the peers
// immediately and a periodic anti-entropy round pulls whatever a push
// missed. The -crl file holds CRL S-expressions (one per line or
// concatenated); listed certificates are evicted at every sweep, and
// the file is re-read without a restart on SIGHUP or through the
// POST /certdir/admin/reload endpoint. CRLs also arrive live over
// POST /certdir/admin/crl and replicate to peers (CRL gossip), and
// every removal or revocation is emitted on the /certdir/events
// stream so subscribed provers drop their cached copies.
//
// With -admin-auth the control plane is closed: publish, remove, and
// the admin endpoints demand a speaks-for proof that the request
// speaks for the -operator principal regarding (sf-ctl publish) or
// (sf-ctl admin) — the same certificates, the same proof cache, the
// same revocation pipeline as the data plane, so revoking an
// operator credential locks its holder out on the next request. The
// daemon's own gossip pushes are signed with -ctl-key plus the
// -ctl-cert chain. -admin-addr serves /metrics (Prometheus format).
// docs/OPERATIONS.md covers every flag and counter in detail.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/server"
	"repro/internal/sfkey"
)

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return fmt.Sprint(*p) }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8360", "listen address")
	adminAddr := flag.String("admin-addr", "", "admin/metrics HTTP listen address (empty = disabled)")
	shards := flag.Int("shards", certdir.DefaultShards, "store shard count")
	sweep := flag.Duration("sweep", 30*time.Second, "expiry sweep interval (0 disables)")
	crlFile := flag.String("crl", "", "file of CRL S-expressions to enforce")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log (empty = memory-only)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval, or never")
	fsyncEvery := flag.Duration("fsync-every", time.Second, "sync period under -fsync interval")
	walSegBytes := flag.Int64("wal-segment-bytes", certdir.DefaultSegmentBytes, "size at which the active WAL segment is sealed and a new one started")
	compactThreshold := flag.Float64("compact-threshold", certdir.DefaultCompactThreshold, "live-record ratio below which a sealed WAL segment is rewritten")
	snapshotEvery := flag.Duration("snapshot-every", 0, "bootstrap snapshot write interval (0 disables; requires -data-dir)")
	var peers peerList
	flag.Var(&peers, "peer", "peer directory base URL (repeatable) to replicate with")
	gossip := flag.Duration("gossip", certdir.DefaultGossipInterval, "anti-entropy round interval (0 disables pulls; pushes still run)")
	pushRetries := flag.Int("push-retries", certdir.DefaultPushRetries, "push attempts per peer per mutation")
	adminAuth := flag.Bool("admin-auth", false, "require speaks-for proofs on publish/remove/admin endpoints")
	operatorFile := flag.String("operator", "", "file holding the operator principal S-expression (required with -admin-auth)")
	ctlKeyFile := flag.String("ctl-key", "", "private key signing this daemon's gossip pushes (required with -admin-auth and -peer)")
	ctlCertFile := flag.String("ctl-cert", "", "certificate chain file delegating control authority to -ctl-key")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	obsFlags := server.RegisterObsFlags()
	flag.Parse()

	rt := server.New("sf-certd")
	logger, err := server.NewLogger(*logFormat)
	if err != nil {
		log.Fatalf("sf-certd: %v", err)
	}
	rt.Logger = logger
	if err := obsFlags.Wire(rt); err != nil {
		log.Fatalf("sf-certd: audit log: %v", err)
	}

	var store *certdir.Store
	if *dataDir != "" {
		policy, err := certdir.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
		st, rec, err := certdir.OpenDurableOpts(*dataDir, *shards, policy, time.Now(), certdir.WALOptions{
			SegmentBytes:     *walSegBytes,
			CompactThreshold: *compactThreshold,
		})
		if err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
		store = st
		rt.Printf("replayed %d WAL records from %s (%d dropped, %d events, torn=%v, compacted=%v, %d certs live)",
			rec.Replayed, *dataDir, rec.Dropped, rec.Events, rec.Torn, rec.Compacted, store.Len())
		if policy == certdir.SyncInterval {
			rt.Every(*fsyncEvery, func() {
				if err := store.SyncWAL(); err != nil {
					rt.Printf("wal sync: %v", err)
				}
			})
		}
		// Signal death stays safe (replay + torn-tail truncation), but a
		// clean SIGTERM also closes the log.
		rt.OnShutdown(func() {
			if err := store.CloseWAL(); err != nil {
				rt.Printf("wal close: %v", err)
			}
		})
	} else {
		store = certdir.NewStore(*shards)
	}

	revocations := cert.NewRevocationStore()
	rt.Every(*sweep, func() {
		now := time.Now()
		expired := store.Sweep(now)
		revoked := store.EvictRevokedByIssuer(revocations.RevokedByIssuerAt(now))
		lapsed := revocations.Sweep(now)
		if expired+revoked+lapsed > 0 {
			rt.Printf("swept %d expired, %d revoked, %d lapsed CRLs (%d stored)",
				expired, revoked, lapsed, store.Len())
		}
	})

	svc := certdir.NewService(store)
	svc.Revocations = revocations
	svc.Obs = rt.Tracer()
	svc.PublishHist = rt.Latencies().PublishAck
	svc.CRLHist = rt.Latencies().CRLInstall

	// Bootstrap snapshots: periodically freeze the live directory into
	// one fsynced, atomically renamed artifact that the snapshot
	// endpoint serves, so a cold peer joins with one bulk transfer
	// instead of gossiping its way up from empty. Until the first write
	// (or without the flag) the endpoint streams live from the store.
	if *snapshotEvery > 0 {
		if *dataDir == "" {
			log.Fatal("sf-certd: -snapshot-every requires -data-dir")
		}
		snapPath := filepath.Join(*dataDir, certdir.SnapshotFileName)
		svc.SnapshotPath = snapPath
		rt.Every(*snapshotEvery, func() {
			if err := certdir.WriteSnapshotFile(snapPath, store, revocations, time.Now()); err != nil {
				rt.Printf("snapshot: %v", err)
			}
		})
	}

	// Control-plane wiring. The signer (outbound: authenticates this
	// daemon's pushes to its peers) and the guard (inbound: closes this
	// daemon's own mutating endpoints) are deliberately independent —
	// the documented migration runs a mesh signing-but-not-enforcing
	// first, then enables -admin-auth one node at a time, so -ctl-key
	// must work without -admin-auth.
	var operator principal.Principal
	if *operatorFile != "" {
		var err error
		if operator, err = server.LoadPrincipalFile(*operatorFile); err != nil {
			log.Fatalf("sf-certd: operator principal: %v", err)
		}
	}
	var ctlSigner *httpauth.CtlSigner
	if *ctlCertFile != "" && *ctlKeyFile == "" {
		log.Fatal("sf-certd: -ctl-cert requires -ctl-key (a credential without its key signs nothing)")
	}
	if *ctlKeyFile != "" {
		if operator == nil {
			log.Fatal("sf-certd: -ctl-key requires -operator (the principal peers enforce)")
		}
		priv, err := sfkey.LoadPrivateKeyFile(*ctlKeyFile)
		if err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
		var chain []*cert.Cert
		if *ctlCertFile != "" {
			if chain, err = cert.LoadCertFile(*ctlCertFile); err != nil {
				log.Fatalf("sf-certd: %v", err)
			}
		}
		ctlSigner = httpauth.NewCtlSigner(prover.NewKeyClosure(priv), operator, chain...)
		rt.Printf("signing outbound control-plane requests for operator %s", operator)
	}
	if *adminAuth {
		if operator == nil {
			log.Fatal("sf-certd: -admin-auth requires -operator")
		}
		if ctlSigner == nil && len(peers) > 0 {
			log.Fatal("sf-certd: -admin-auth with -peer requires -ctl-key (peers will reject unsigned pushes)")
		}
		svc.Guard = httpauth.NewCtlGuard(operator, revocations)
		svc.Guard.Audit = rt.Audit()
		rt.Printf("control plane enforcing: callers must speak for %s", operator)
	}

	if len(peers) > 0 {
		clients := make([]*certdir.Client, len(peers))
		for i, p := range peers {
			clients[i] = certdir.NewClient(p)
			clients[i].Ctl = ctlSigner
		}
		rep := certdir.NewReplicator(store, clients)
		rep.Revocations = revocations
		rep.RoundHist = rt.Latencies().GossipRound
		rep.Interval = *gossip
		if *gossip <= 0 {
			// A zero ticker panics; an effectively-infinite interval
			// keeps pushes running while disabling pulls, as documented.
			rep.Interval = time.Duration(1<<62 - 1)
		}
		rep.Retries = *pushRetries
		rep.Logf = rt.Printf
		rep.Start()
		rt.OnShutdown(rep.Stop)
		svc.Replicator = rep
		// One eager round so a restarted or freshly added node catches
		// up before its first ticker tick. A completely empty store —
		// a node joining an established mesh for the first time — tries
		// snapshot bootstrap first: one bulk transfer instead of pulling
		// the whole directory through gossip fetches. Failure just means
		// gossip does the whole job, as before snapshots existed.
		empty := store.Len() == 0
		go func() {
			if empty {
				if n, err := rep.BootstrapFromPeer(context.Background()); err != nil {
					rt.Printf("snapshot bootstrap: %v (falling back to gossip)", err)
				} else {
					rt.Printf("snapshot bootstrap adopted %d certs", n)
				}
			}
			if n, err := rep.Converge(); err != nil {
				rt.Printf("initial anti-entropy: %v", err)
			} else if n > 0 {
				rt.Printf("initial anti-entropy pulled %d certs", n)
			}
		}()
		rt.Printf("replicating with %d peer(s), gossip every %s", len(peers), *gossip)
	}

	// Hot CRL reload: SIGHUP and the admin endpoint run the same
	// function through the runtime's shared wiring — re-read the file
	// (new lists only; dedup keeps a no-op reload from flushing the
	// proof cache), evict what the new lists void RIGHT NOW rather
	// than at the next sweep, and fan the new lists out to peers.
	if *crlFile != "" {
		reload, err := rt.WireCRLFile(revocations, *crlFile, func(added []*cert.RevocationList) int {
			evicted := store.EvictRevokedByIssuer(revocations.RevokedByIssuerAt(time.Now()))
			if svc.Replicator != nil {
				for _, rl := range added {
					svc.Replicator.EnqueueCRL(rl)
				}
			}
			return evicted
		})
		if err != nil {
			log.Fatalf("sf-certd: %v", err)
		}
		svc.ReloadCRLs = reload
	}

	// Operator metrics: the Prometheus mirror of the stats endpoint,
	// served at /metrics on -admin-addr.
	m := rt.Metrics()
	m.Register(server.ProofCacheCollector(core.SharedProofCache()))
	m.Register(func(emit func(server.Metric)) {
		st := store.Stats()
		emit(server.Gauge("sf_certdir_stored", "Certificates currently indexed.", float64(store.Len())))
		emit(server.Counter("sf_certdir_published_total", "Certificates accepted by publish.", float64(st.Published)))
		emit(server.Counter("sf_certdir_rejected_total", "Publishes refused by verification.", float64(st.Rejected)))
		emit(server.Counter("sf_certdir_queries_total", "Query requests served.", float64(st.Queries)))
		emit(server.Counter("sf_certdir_removed_total", "Certificates retracted.", float64(st.Removed)))
		emit(server.Counter("sf_certdir_evicted_total", "Certificates evicted by revocation.", float64(st.Evicted)))
		emit(server.Gauge("sf_certdir_crls", "Revocation lists installed.", float64(len(revocations.Lists()))))
		if svc.Replicator != nil {
			rs := svc.Replicator.Stats()
			emit(server.Counter("sf_certdir_gossip_pushes_total", "Successful per-peer pushes.", float64(rs.Pushes)))
			emit(server.Counter("sf_certdir_gossip_pulled_total", "Certificates pulled by anti-entropy.", float64(rs.Pulled)))
			emit(server.Counter("sf_certdir_gossip_rounds_total", "Anti-entropy rounds completed.", float64(rs.Rounds)))
			emit(server.Counter("sf_certdir_gossip_crls_pulled_total", "CRLs pulled by anti-entropy.", float64(rs.CRLsPulled)))
			emit(server.Counter("sf_gossip_digest_bytes_total", "Anti-entropy summary bytes moved (request + reply).", float64(rs.DigestBytes)))
			emit(server.Counter("sf_gossip_rounds_total", "Anti-entropy rounds completed.", float64(rs.Rounds)))
			emit(server.Counter("sf_gossip_descents_total", "Merkle node-summary round trips.", float64(rs.Descents)))
		}
		if ws, ok := store.WALStats(); ok {
			emit(server.Gauge("sf_certdir_wal_segments", "WAL segments on disk.", float64(ws.Segments)))
			emit(server.Gauge("sf_certdir_wal_size_bytes", "WAL bytes on disk.", float64(ws.SizeBytes)))
			emit(server.Counter("sf_certdir_wal_compactions_total", "WAL segment rewrites.", float64(ws.Compactions)))
			emit(server.Counter("sf_certdir_wal_rotations_total", "WAL segment rotations.", float64(ws.Rotations)))
		}
		if svc.Guard != nil {
			gs := svc.Guard.Stats()
			emit(server.Counter("sf_ctl_authorized_total", "Control-plane requests authorized.", float64(gs.Authorized)))
			emit(server.Counter("sf_ctl_denied_total", "Control-plane requests denied.", float64(gs.Denied)))
		}
	})

	bound, err := rt.Serve(*addr, svc)
	if err != nil {
		log.Fatalf("sf-certd: %v", err)
	}
	if _, err := rt.ServeAdmin(*adminAddr); err != nil {
		log.Fatalf("sf-certd: %v", err)
	}
	rt.Printf("directory listening on %s (%d shards)", bound, *shards)
	if err := rt.Wait(); err != nil {
		log.Fatalf("sf-certd: %v", err)
	}
}
