// Command sf-proxy is the client-side authorizing HTTP proxy of paper
// section 5.3.5: it forwards each browser request to the origin
// server, answers Snowflake challenges from its Prover, and serves an
// HTML user interface at http://security.localhost/ for creating
// keys, importing delegations, and delegating authority over
// recently visited pages.
//
// Usage:
//
//	sf-proxy -addr 127.0.0.1:3128 [-key user.key] [-admin-addr 127.0.0.1:3129]
//
// The proxy holds a long-lived prover (imported delegations, minted
// shortcuts); -sweep evicts its expired edges on a timer through the
// shared server runtime. -admin-addr serves /metrics.
package main

import (
	"flag"
	"fmt"
	"html/template"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/server"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// proxy wraps the authorizing client with history and a delegation UI.
type proxy struct {
	mu      sync.Mutex
	priv    *sfkey.PrivateKey
	pv      *prover.Prover
	client  *httpauth.Client
	history []string
}

const uiHost = "security.localhost"

func main() {
	addr := flag.String("addr", "127.0.0.1:3128", "proxy listen address")
	adminAddr := flag.String("admin-addr", "", "admin/metrics HTTP listen address (empty = disabled)")
	keyFile := flag.String("key", "", "user private key (created fresh when absent)")
	sweepEvery := flag.Duration("sweep", time.Minute, "prover expired-edge sweep interval (0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	var priv *sfkey.PrivateKey
	var err error
	if *keyFile != "" {
		if priv, err = sfkey.LoadPrivateKeyFile(*keyFile); err != nil {
			log.Fatalf("sf-proxy: %v", err)
		}
	} else if priv, err = sfkey.Generate(); err != nil {
		log.Fatalf("sf-proxy: %v", err)
	}

	rt := server.New("sf-proxy")
	if rt.Logger, err = server.NewLogger(*logFormat); err != nil {
		log.Fatalf("sf-proxy: %v", err)
	}

	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(priv))
	p := &proxy{
		priv:   priv,
		pv:     pv,
		client: httpauth.NewClient(pv, principal.KeyOf(priv.Public())),
	}
	// The proxy's prover lives as long as the process and digests every
	// imported delegation; the runtime sweeps its expired edges on a
	// timer so the graph tracks the live delegation set.
	rt.Every(*sweepEvery, func() { pv.Sweep(time.Now()) })
	rt.Metrics().Register(server.ProofCacheCollector(core.SharedProofCache()))
	rt.Metrics().Register(server.ProverCollector(pv))

	bound, err := rt.Serve(*addr, p)
	if err != nil {
		log.Fatalf("sf-proxy: %v", err)
	}
	if _, err := rt.ServeAdmin(*adminAddr); err != nil {
		log.Fatalf("sf-proxy: %v", err)
	}
	rt.Printf("listening on %s; UI at http://%s/ (user %s)",
		bound, uiHost, priv.Public().Fingerprint())
	if err := rt.Wait(); err != nil {
		log.Fatalf("sf-proxy: %v", err)
	}
}

// ServeHTTP dispatches between the UI virtual host and forwarding.
func (p *proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Host == uiHost || strings.HasPrefix(r.Host, uiHost+":") {
		p.serveUI(w, r)
		return
	}
	p.forward(w, r)
}

// forward relays a browser request through the authorizing client.
func (p *proxy) forward(w http.ResponseWriter, r *http.Request) {
	url := r.URL.String()
	if !strings.HasPrefix(url, "http") {
		url = "http://" + r.Host + r.URL.String()
	}
	out, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range r.Header {
		if k == "Proxy-Connection" {
			continue
		}
		for _, v := range vs {
			out.Header.Add(k, v)
		}
	}
	resp, err := p.client.Do(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	p.mu.Lock()
	if len(p.history) == 0 || p.history[len(p.history)-1] != url {
		p.history = append(p.history, url)
		if len(p.history) > 50 {
			p.history = p.history[1:]
		}
	}
	p.mu.Unlock()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

var uiTmpl = template.Must(template.New("ui").Parse(`<!DOCTYPE html>
<html><head><title>Snowflake proxy</title></head><body>
<h1>Snowflake authorizing proxy</h1>
<p>User principal fingerprint: <code>{{.Fingerprint}}</code></p>
<h2>Recently visited</h2>
<ul>{{range .History}}<li>{{.}} — <a href="/delegate?url={{.}}">delegate</a></li>{{end}}</ul>
<h2>Import a delegation</h2>
<form method="POST" action="/import">
<textarea name="cert" rows="4" cols="80" placeholder="{transport-encoded certificate}"></textarea>
<input type="submit" value="Import">
</form>
<h2>Delegate</h2>
<form method="POST" action="/delegate">
URL prefix: <input name="prefix" size="40">
Recipient principal (S-expression): <input name="recipient" size="60">
<input type="submit" value="Create delegation">
</form>
</body></html>`))

// serveUI implements the http://security.localhost/ interface.
func (p *proxy) serveUI(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/" || r.URL.Path == "/delegate" && r.Method == http.MethodGet:
		p.mu.Lock()
		hist := append([]string(nil), p.history...)
		p.mu.Unlock()
		uiTmpl.Execute(w, struct {
			Fingerprint string
			History     []string
		}{p.priv.Public().Fingerprint(), hist})
	case r.URL.Path == "/import" && r.Method == http.MethodPost:
		raw := strings.TrimSpace(r.FormValue("cert"))
		proof, err := core.ParseProof([]byte(raw))
		if err != nil {
			http.Error(w, "bad certificate: "+err.Error(), http.StatusBadRequest)
			return
		}
		p.pv.AddProof(proof)
		fmt.Fprintf(w, "imported: %s\n", proof.Conclusion())
	case r.URL.Path == "/delegate" && r.Method == http.MethodPost:
		p.handleDelegate(w, r)
	default:
		http.NotFound(w, r)
	}
}

// handleDelegate creates the "HTML snippet" of section 5.3.5: a link
// carrying both the user's delegation and the proof the user needed.
func (p *proxy) handleDelegate(w http.ResponseWriter, r *http.Request) {
	prefix := r.FormValue("prefix")
	recipS := r.FormValue("recipient")
	if prefix == "" || recipS == "" {
		http.Error(w, "prefix and recipient required", http.StatusBadRequest)
		return
	}
	re, err := sexp.ParseOne([]byte(recipS))
	if err != nil {
		http.Error(w, "bad recipient: "+err.Error(), http.StatusBadRequest)
		return
	}
	recipient, err := principal.FromSexp(re)
	if err != nil {
		http.Error(w, "bad recipient: "+err.Error(), http.StatusBadRequest)
		return
	}
	grant := tag.ListOf(
		tag.Literal("web"),
		tag.ListOf(tag.Literal("method"), tag.Literal("GET")),
		tag.ListOf(tag.Literal("service"), tag.All()),
		tag.ListOf(tag.Literal("resourcePath"), tag.Prefix(prefix)),
	)
	proof, err := p.pv.Delegate(principal.KeyOf(p.priv.Public()), recipient, grant,
		core.Until(time.Now().Add(7*24*time.Hour)))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<p>Deliver this snippet to the recipient:</p>
<pre>&lt;a href=%q data-sf-delegation=%q&gt;shared: %s&lt;/a&gt;</pre>`,
		prefix, proof.Sexp().Transport(), template.HTMLEscapeString(prefix))
}
